"""Kernel machinery behind SPMV/GSPMV: a pluggable backend registry.

The paper's implementation "developed a code generator which, for a
given number of vectors m, produces a fully-unrolled SIMD kernel" —
i.e. kernel work is specialized once per ``m`` and reused every call.
:class:`KernelRegistry` captures the same shape of specialization for a
*family* of interchangeable engines: it prepares, once per
``(block_size, m, engine)``, everything a product needs beyond the raw
arrays — einsum contraction paths, cached ``scipy.sparse`` views,
compiled kernels, unique-block pools — and dispatches every multiply
through one validated entry point.

Engines (see DESIGN.md §13):

``"blocked"``
    A pure-NumPy reference kernel working directly on the BCRS arrays:
    gather X blocks by column index, batched ``3 x 3 @ 3 x m`` products
    (the paper's "basic kernel"), segment-sum per block row.  Fully
    instrumentable (`repro.sparse.traffic` counts its exact memory
    traffic) and the engine the performance model reasons about.

``"tiled"``
    The blocked kernel with row tiling so its temporaries stay
    cache-resident (the paper's cache-blocking optimization).

``"scipy"``
    Delegates to ``scipy.sparse``'s C implementation via a cached BSR
    view sharing ``A``'s block array.

``"cgen"``
    Generated C kernels compiled per ``(block_size, m)`` with the
    system compiler and register blocking over the vector dimension —
    the reproduction of the paper's per-``m`` code generator
    (:mod:`repro.sparse.kernels_cgen`).  Unavailable environments
    demote down the fallback ladder with a one-time warning.

``"numba"``
    Numba-jitted kernels with a parallel block-row loop
    (:mod:`repro.sparse.kernels_numba`); import-guarded, demoted down
    the ladder when Numba is absent.

``"dedup"``
    Hash-conses ``A.blocks`` into a unique-block pool and computes all
    (unique block) x (block column of X) products as one DGEMM, then
    gathers per stored block — profitable when blocks repeat heavily
    (crystalline packings, mesh-regular matrices; cf. "Exploiting
    repeated matrix block structures", arXiv:2508.06710).  Falls back
    to ``tiled`` when the pool is too large to pay.

``"auto"``
    Micro-benchmarks the available engines for this machine and matrix
    shape at first use, caches the choice to disk, and dispatches to
    the winner (:mod:`repro.sparse.autotune`).

Every dispatch runs under the engine watchdog
(:mod:`repro.sparse.enginewatch`, DESIGN.md §14): engine-tier failures
demote the product down an explicit fallback ladder instead of raising,
an opt-in shadow check verifies results against the ``blocked``
reference on a cadence, and an engine caught miscomparing is
quarantined for that shape class and routed around from then on.
"""

from __future__ import annotations

import time
import warnings
import weakref
from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.resilience.faults import active_injector, fire_fault
from repro.sparse import kernels_cgen, kernels_numba
from repro.sparse.bcrs import BCRSMatrix
from repro.sparse.enginewatch import (
    REFERENCE_ENGINE,
    EngineFailure,
    EngineWatch,
    reference_rows,
    shape_class,
)

__all__ = [
    "KernelRegistry",
    "get_default_registry",
    "Engine",
    "ENGINE_NAMES",
    "available_engines",
    "set_default_engine",
]

Engine = Literal["auto", "blocked", "tiled", "scipy", "cgen", "numba", "dedup"]

#: Every concrete engine name (excludes the ``"auto"`` selector).
ENGINE_NAMES: Tuple[str, ...] = (
    "blocked", "tiled", "scipy", "cgen", "numba", "dedup",
)

#: Temporary-buffer budget of the "tiled" engine.  The per-tile
#: gather/contribution temporaries are ~2 * tile_nnzb * b * m * 8 bytes;
#: keeping them around L2-cache size is what makes cache blocking pay
#: (measured ~4x at m=16 on a DRAM-resident matrix).
TILE_BUDGET_BYTES = 2 * 2**20

#: The dedup engine's big-GEMM mode computes ``n_unique * nb_cols``
#: block products where the exact kernel needs ``nnzb``; that mode only
#: runs when the expansion stays below this factor.
DEDUP_EXPANSION_LIMIT = 1.25

#: Above the expansion limit the dedup engine instead batches one GEMM
#: per unique block (no column expansion, but a Python-level loop over
#: the pool) — worthwhile only while the pool stays this small.
DEDUP_MAX_GROUPS = 32


def available_engines() -> Tuple[str, ...]:
    """Concrete engines usable in this process, in registry order.

    ``cgen`` requires a working C toolchain; ``numba`` requires the
    (optional) numba package.  Everything else is always available.
    """
    names = ["blocked", "tiled", "scipy"]
    if kernels_cgen.available():
        names.append("cgen")
    if kernels_numba.available():
        names.append("numba")
    names.append("dedup")
    return tuple(names)


def _segment_sum(
    contrib: np.ndarray, row_ptr: np.ndarray, nb: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sum ``contrib`` (nnzb, b, m) into per-block-row totals (nb, b, m).

    Uses ``np.add.reduceat`` with explicit handling of empty block rows:

    * a *middle* empty row has ``start_k == start_{k+1}``, for which
      reduceat returns ``contrib[start_k]`` — zeroed afterwards (the
      neighbouring segments are unaffected);
    * a *trailing* empty row has ``start == nnzb``, out of range for
      reduceat — those rows are excluded from the call entirely
      (clipping their index would silently truncate the previous row's
      segment, a bug the property suite caught).
    """
    b, m = contrib.shape[1], contrib.shape[2]
    nnzb = contrib.shape[0]
    if out is None:
        out = np.zeros((nb, b, m))
    else:
        out[:] = 0.0
    if nnzb == 0:
        return out
    starts = row_ptr[:-1]
    lengths = np.diff(row_ptr)
    in_range = starts < nnzb
    out[in_range] = np.add.reduceat(contrib, starts[in_range], axis=0)
    empty = lengths == 0
    if np.any(empty):
        out[empty] = 0.0
    return out


@dataclass
class _BlockedPlan:
    """Precomputed state for the blocked engine at a fixed (b, m)."""

    einsum_path: list
    m: int


@dataclass
class _DedupPlan:
    """Hash-consed block pool for the dedup engine (per matrix).

    ``pool`` holds each distinct block once; ``inverse`` maps each
    stored block to its pool row.  ``mode`` picks the execution
    strategy: ``"gemm"`` multiplies the whole pool against every block
    column of X as one DGEMM (``pool_flat`` is the pool reshaped
    ``(n_unique * b, b)`` for it), ``"grouped"`` runs one batched GEMM
    per unique block over ``perm``/``group_ptr`` (stored blocks sorted
    by pool row), ``"fallback"`` delegates to ``tiled`` because the
    pool is too large for either to pay.  ``fingerprint`` is a cheap
    sample checksum of the source block array used to detect in-place
    mutation (``invalidate`` remains the guaranteed path).
    """

    pool: np.ndarray
    pool_flat: np.ndarray
    n_unique: int
    inverse: np.ndarray
    fingerprint: Tuple
    mode: str
    perm: Optional[np.ndarray] = None
    group_ptr: Optional[np.ndarray] = None


def _blocks_fingerprint(blocks: np.ndarray) -> Tuple:
    """A cheap staleness probe: shape + strided sample sums.

    Reads ~1k elements regardless of matrix size, so it can run on
    every dedup multiply.  It catches typical in-place updates (block
    scaling, refreshed interaction tensors); pathological edits that
    preserve the sampled sums need an explicit ``invalidate``.
    """
    flat = blocks.reshape(-1)
    if flat.size == 0:
        return (blocks.shape, 0.0, 0.0)
    stride = max(1, flat.size // 1024)
    sample = flat[::stride]
    return (blocks.shape, float(sample.sum()), float(np.abs(sample).sum()))


class KernelRegistry:
    """Caches per-``m`` kernel plans and per-matrix views; dispatches
    every product through one validated ``multiply``.

    One registry (usually the module default) is shared by all products;
    its per-matrix caches are keyed by weak references so matrices can
    be garbage collected.  ``default_engine`` is what ``engine=None``
    resolves to — the CLI ``--engine`` flag and
    :func:`set_default_engine` rebind it process-wide.
    """

    def __init__(self, default_engine: str = "scipy") -> None:
        self.default_engine: str = default_engine
        self._plans: Dict[Tuple[int, int], _BlockedPlan] = {}
        # scipy views are kept share-enforced (see scipy_view), so the
        # cached entry also remembers which block array it was built
        # from: replacing A.blocks wholesale invalidates it.
        self._scipy_views: "weakref.WeakKeyDictionary[BCRSMatrix, Tuple[sp.bsr_matrix, int]]" = (
            weakref.WeakKeyDictionary()
        )
        self._dedup_plans: "weakref.WeakKeyDictionary[BCRSMatrix, _DedupPlan]" = (
            weakref.WeakKeyDictionary()
        )
        self._selector = None  # built lazily (imports autotune)
        self._warned_fallback: set = set()
        #: The engine watchdog: fallback ladder, shadow verification,
        #: quarantine (see :mod:`repro.sparse.enginewatch`).
        self.watch = EngineWatch()

    # ------------------------------------------------------------------
    # engine resolution
    # ------------------------------------------------------------------
    @property
    def selector(self):
        """The lazily built :class:`~repro.sparse.autotune.AutoSelector`."""
        if self._selector is None:
            from repro.sparse.autotune import AutoSelector

            self._selector = AutoSelector(self)
        return self._selector

    def resolve_engine(
        self, A: BCRSMatrix, m: int, engine: Optional[str] = None
    ) -> str:
        """Map a requested engine (or ``None``) to a concrete, available
        engine name.

        ``None`` resolves to :attr:`default_engine`; ``"auto"`` runs the
        per-machine auto-selection; an unavailable compiled tier
        (``cgen`` without a toolchain, ``numba`` without the package)
        demotes down the fallback ladder with a one-time warning and a
        recorded ``fallback`` event, so scripts stay portable across
        environments.  An engine quarantined for this shape class is
        routed around the same way.
        """
        engine = engine or self.default_engine
        if engine == "auto":
            engine = self.selector.select(A, m)
        elif engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of "
                f"{('auto',) + ENGINE_NAMES}"
            )
        if engine == "cgen" and not kernels_cgen.available():
            engine = self._fallback(
                engine, kernels_cgen.unavailable_reason() or "no C toolchain"
            )
        elif engine == "numba" and not kernels_numba.available():
            engine = self._fallback(engine, "numba is not installed")
        if self.watch.has_quarantines:
            shape = shape_class(A, m)
            if self.watch.is_quarantined(engine, shape):
                engine = self._demote(engine, shape)
        return engine

    def _fallback(self, engine: str, reason: str) -> str:
        """Route an *unavailable* engine to its ladder replacement.

        The event and the warning fire once per engine per process —
        unavailability is a standing condition, not a per-call incident.
        """
        rung = self.watch.next_rung(engine, set(available_engines()))
        if engine not in self._warned_fallback:
            self._warned_fallback.add(engine)
            self.watch.record(
                "fallback", engine, reason=f"{reason}; using {rung!r}"
            )
            warnings.warn(
                f"engine {engine!r} is unavailable ({reason}); "
                f"falling back to {rung!r}",
                RuntimeWarning,
                stacklevel=4,
            )
        return rung

    def _demote(self, engine: str, shape: str) -> str:
        """The next trustworthy rung below ``engine`` for ``shape``.

        ``scipy`` is the ladder's final rung; below it only the
        reference engine remains, which is always available and can
        never be quarantined — so demotion always terminates.
        """
        if engine == "scipy":
            return REFERENCE_ENGINE
        return self.watch.next_rung(engine, set(available_engines()), shape)

    # ------------------------------------------------------------------
    # cached plans and views
    # ------------------------------------------------------------------
    def blocked_plan(self, block_size: int, m: int) -> _BlockedPlan:
        """Return (building if needed) the blocked-engine plan for (b, m)."""
        key = (block_size, m)
        plan = self._plans.get(key)
        if plan is None:
            # Representative operands for path optimization only.
            blocks = np.empty((2, block_size, block_size))
            xgath = np.empty((2, block_size, m))
            path, _ = np.einsum_path(
                "kij,kjm->kim", blocks, xgath, optimize="optimal"
            )
            plan = _BlockedPlan(einsum_path=path, m=m)
            self._plans[key] = plan
        return plan

    def scipy_view(self, A: BCRSMatrix) -> sp.bsr_matrix:
        """Return (building if needed) a scipy BSR view of ``A``.

        The view is *guaranteed* to share ``A``'s block array: scipy's
        constructor sometimes copies ``data`` (e.g. when index dtype
        conversion kicks in), which used to let in-place block updates
        silently serve stale products from this cache.  The constructor
        result is therefore re-pointed at ``A.blocks`` whenever sharing
        was lost, and the cache entry is keyed on the identity of the
        block array so a wholesale ``blocks`` replacement rebuilds it.
        Use :meth:`invalidate` to drop all cached state for a matrix.
        """
        entry = self._scipy_views.get(A)
        if entry is not None and entry[1] == id(A.blocks):
            return entry[0]
        view = sp.bsr_matrix(
            (A.blocks, A.col_ind, A.row_ptr),
            shape=A.shape,
            blocksize=(A.block_size, A.block_size),
        )
        if view.data is not A.blocks and not np.shares_memory(
            view.data, A.blocks
        ):
            # scipy copied the blocks during construction; re-share so
            # mutations of A.blocks are always visible to the view.
            # (The constructor never reorders data relative to the
            # passed (data, indices, indptr) triplet.)
            view.data = A.blocks
        self._scipy_views[A] = (view, id(A.blocks))
        return view

    def dedup_plan(self, A: BCRSMatrix) -> _DedupPlan:
        """Return (building if needed) the hash-consed block pool of ``A``.

        The plan copies block values, so in-place mutation of
        ``A.blocks`` makes it stale; a cheap fingerprint re-checked on
        every dedup multiply catches typical mutations, and
        :meth:`invalidate` forces a rebuild.
        """
        plan = self._dedup_plans.get(A)
        fp = _blocks_fingerprint(A.blocks)
        if plan is not None and plan.fingerprint == fp:
            return plan
        pool, inverse = A.unique_blocks()
        n_unique = len(pool)
        b = A.block_size
        perm = None
        group_ptr = None
        if A.nnzb == 0:
            mode = "fallback"
        elif n_unique * A.nb_cols <= DEDUP_EXPANSION_LIMIT * A.nnzb:
            mode = "gemm"
        elif n_unique <= DEDUP_MAX_GROUPS:
            mode = "grouped"
            perm = np.argsort(inverse, kind="stable")
            counts = np.bincount(inverse, minlength=n_unique)
            group_ptr = np.zeros(n_unique + 1, dtype=np.int64)
            np.cumsum(counts, out=group_ptr[1:])
        else:
            mode = "fallback"
        plan = _DedupPlan(
            pool=pool,
            pool_flat=np.ascontiguousarray(pool.reshape(n_unique * b, b)),
            n_unique=n_unique,
            inverse=inverse,
            fingerprint=fp,
            mode=mode,
            perm=perm,
            group_ptr=group_ptr,
        )
        self._dedup_plans[A] = plan
        return plan

    def invalidate(self, A: BCRSMatrix) -> None:
        """Drop every cached per-matrix artifact for ``A``.

        Call after mutating ``A.blocks`` in place when relying on the
        dedup engine (the scipy view shares memory and needs no
        invalidation; the dedup pool holds copies).
        """
        self._scipy_views.pop(A, None)
        self._dedup_plans.pop(A, None)

    # ------------------------------------------------------------------
    # multiply
    # ------------------------------------------------------------------
    def multiply(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
        engine: Optional[Engine] = None,
    ) -> np.ndarray:
        """Compute ``Y = A @ X`` where ``X`` is ``(n, m)`` row-major.

        Parameters
        ----------
        A:
            The BCRS matrix.
        X:
            Multivector of shape ``(n_cols, m)`` (or ``(n_cols,)``,
            treated as m=1 and returned 1-D).
        out:
            Optional preallocated output of shape matching the result.
            Must be float64 and C-contiguous (a clear error beats the
            silent down-cast a float32 buffer used to get).  ``out``
            may alias ``X``: aliasing is detected and served through a
            temporary.
        engine:
            An :data:`Engine` name, ``"auto"``, or ``None`` for the
            registry default; see the module docstring.
        """
        X = np.asarray(X, dtype=np.float64)
        squeeze = X.ndim == 1
        if squeeze:
            X = X[:, None]
        if X.shape[0] != A.n_cols:
            raise ValueError(
                f"X has {X.shape[0]} rows; matrix has {A.n_cols} columns"
            )
        out2d = out
        if out is not None:
            if out.dtype != np.float64:
                raise ValueError(
                    f"out must be float64, got {out.dtype}; kernels would "
                    "otherwise down-cast inconsistently between engines"
                )
            if not out.flags["C_CONTIGUOUS"]:
                raise ValueError(
                    "out must be C-contiguous (pass np.ascontiguousarray)"
                )
            expected = (A.n_rows,) if out.ndim == 1 else (A.n_rows, X.shape[1])
            if out.shape != expected:
                raise ValueError(
                    f"out must have shape {expected}, got {out.shape}"
                )
            if out.ndim == 1:
                out2d = out[:, None]
        engine = self.resolve_engine(A, X.shape[1], engine)
        # Aliasing guard: engines write `out` while still gathering from
        # X, so a caller passing out=X (in-place update) must be served
        # through a temporary.
        alias = out2d is not None and np.may_share_memory(out2d, X)
        target = None if alias else out2d
        Y = self._multiply_watched(A, X, target, engine)
        if alias:
            np.copyto(out2d, Y)
            Y = out2d
        if squeeze:
            return out if out is not None else Y[:, 0]
        return Y

    def _multiply_watched(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        target: Optional[np.ndarray],
        engine: str,
    ) -> np.ndarray:
        """Dispatch under the watchdog: ladder on failure, shadow-verify
        on cadence, quarantine and re-execute on miscompare.

        The loop terminates because every demotion moves strictly down
        :data:`~repro.sparse.enginewatch.FALLBACK_LADDER` and the
        reference engine neither raises :class:`EngineFailure` nor gets
        verified against itself.
        """
        watch = self.watch
        m = X.shape[1]
        shape: Optional[str] = None
        while True:
            try:
                Y = self._dispatch(A, X, target, engine)
            except EngineFailure as exc:
                shape = shape or shape_class(A, m)
                watch.record("engine_failure", engine, shape, str(exc))
                engine = self._demote(engine, shape)
                continue
            spec = fire_fault(
                "engine.multiply", engine=engine, b=A.block_size, m=m
            )
            if spec is not None:
                if spec.kind == "raise":
                    shape = shape or shape_class(A, m)
                    watch.record(
                        "engine_failure", engine, shape,
                        "injected multiply failure",
                    )
                    engine = self._demote(engine, shape)
                    continue
                # Data-corruption kinds simulate a kernel returning
                # wrong numbers: mutate the product in place so the
                # shadow check (not the injection site) must catch it.
                np.copyto(Y, spec.mutate(Y, active_injector().rng))
            if watch.enabled:
                shape = shape or shape_class(A, m)
                if watch.should_verify(engine, shape):
                    if not self._verify_product(A, X, Y, engine, shape):
                        watch.record(
                            "verify_fail", engine, shape,
                            "shadow check miscompared with reference",
                        )
                        watch.quarantine(
                            engine, shape, "shadow verification miscompare"
                        )
                        engine = self._demote(engine, shape)
                        continue
            return Y

    def _dispatch(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        target: Optional[np.ndarray],
        engine: str,
    ) -> np.ndarray:
        """Raw single-engine dispatch: no ladder, no verification.

        The autotuner times candidates through this entry point so a
        failing engine raises :class:`EngineFailure` to the timing loop
        instead of being silently served by a fallback rung (which
        would corrupt the measurement).
        """
        if engine == "scipy":
            Y = self.scipy_view(A) @ X
            if target is not None:
                np.copyto(target, Y)
                Y = target
            return Y
        if engine == "blocked":
            return self._multiply_blocked(A, X, target)
        if engine == "tiled":
            return self._multiply_tiled(A, X, target)
        if engine == "cgen":
            return self._multiply_cgen(A, X, target)
        if engine == "numba":
            return self._multiply_numba(A, X, target)
        if engine == "dedup":
            return self._multiply_dedup(A, X, target)
        raise ValueError(f"unknown engine {engine!r}")

    def _verify_product(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        Y: np.ndarray,
        engine: str,
        shape: str,
    ) -> bool:
        """One shadow check of ``Y`` against the reference engine.

        Normally a strided sample of block rows; every
        :attr:`~repro.sparse.enginewatch.EngineWatch.full_every`-th
        verification (and whenever the matrix is no bigger than the
        sample) the full product.
        """
        watch = self.watch
        start = time.perf_counter()
        count = watch.bump_verification(engine, shape)
        b = A.block_size
        m = X.shape[1]
        tol = watch.tolerance(b, m)
        full = (
            A.nb_rows <= watch.sample_rows
            or watch.full_every == 1
            or count % watch.full_every == 0
        )
        if full:
            ref = self._multiply_blocked(A, X, None)
            ok = watch.compare(np.asarray(Y), ref, tol)
        else:
            rows = watch.sample_block_rows(A.nb_rows, count)
            ref = reference_rows(A, X, rows)
            got = np.ascontiguousarray(Y).reshape(A.nb_rows, b, m)[rows]
            ok = watch.compare(got, ref, tol)
        watch.note_verification(
            engine, ok, time.perf_counter() - start, full
        )
        return ok

    # ------------------------------------------------------------------
    # engine implementations
    # ------------------------------------------------------------------
    def _multiply_blocked(
        self, A: BCRSMatrix, X: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        b = A.block_size
        m = X.shape[1]
        plan = self.blocked_plan(b, m)
        # Gather the X blocks each stored block multiplies: (nnzb, b, m).
        Xb = np.ascontiguousarray(X).reshape(A.nb_cols, b, m)
        gathered = Xb[A.col_ind]
        # The paper's "basic kernel": (b x b) @ (b x m) for every block.
        contrib = np.einsum(
            "kij,kjm->kim", A.blocks, gathered, optimize=plan.einsum_path
        )
        Yb = _segment_sum(contrib, A.row_ptr, A.nb_rows)
        Y = Yb.reshape(A.n_rows, m)
        if out is not None:
            np.copyto(out, Y)
            return out
        return Y

    def _multiply_tiled(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        out: Optional[np.ndarray],
        tile_rows: Optional[int] = None,
    ) -> np.ndarray:
        """The blocked kernel with row tiling (cache blocking).

        Processes ``tile_rows`` block rows at a time so the gathered
        operand and contribution temporaries stay cache-resident instead
        of materializing an ``(nnzb, b, m)`` array — the paper's
        "cache blocking optimizations" for large matrices.  The default
        tile size adapts to m and the matrix density so the temporaries
        fit :data:`TILE_BUDGET_BYTES`.
        """
        b = A.block_size
        m = X.shape[1]
        if tile_rows is None:
            bytes_per_row = max(1.0, A.blocks_per_row) * b * m * 8 * 2
            tile_rows = max(64, int(TILE_BUDGET_BYTES / bytes_per_row))
        plan = self.blocked_plan(b, m)
        Xb = np.ascontiguousarray(X).reshape(A.nb_cols, b, m)
        use_out_directly = out is not None and out.flags["C_CONTIGUOUS"]
        Y = out if use_out_directly else np.empty((A.n_rows, m))
        Yb = Y.reshape(A.nb_rows, b, m)
        rp = A.row_ptr
        for start in range(0, A.nb_rows, tile_rows):
            end = min(start + tile_rows, A.nb_rows)
            lo, hi = int(rp[start]), int(rp[end])
            contrib = np.einsum(
                "kij,kjm->kim",
                A.blocks[lo:hi],
                Xb[A.col_ind[lo:hi]],
                optimize=plan.einsum_path,
            )
            local_ptr = (rp[start : end + 1] - lo).astype(np.int64)
            Yb[start:end] = _segment_sum(contrib, local_ptr, end - start)
        if out is not None and not use_out_directly:
            np.copyto(out, Y)
            return out
        return Y

    def _multiply_cgen(
        self, A: BCRSMatrix, X: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        m = X.shape[1]
        Xc = np.ascontiguousarray(X)
        use_out_directly = out is not None and out.flags["C_CONTIGUOUS"]
        Y = out if use_out_directly else np.empty((A.n_rows, m))
        kernels_cgen.gspmv_cgen(
            A.row_ptr, A.col_ind, A.blocks, Xc, Y, watch=self.watch
        )
        if out is not None and not use_out_directly:
            np.copyto(out, Y)
            return out
        return Y

    def _multiply_numba(
        self, A: BCRSMatrix, X: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:  # pragma: no cover - needs numba installed
        m = X.shape[1]
        Xc = np.ascontiguousarray(X)
        use_out_directly = out is not None and out.flags["C_CONTIGUOUS"]
        Y = out if use_out_directly else np.empty((A.n_rows, m))
        kernels_numba.gspmv_numba(A.row_ptr, A.col_ind, A.blocks, Xc, Y)
        if out is not None and not use_out_directly:
            np.copyto(out, Y)
            return out
        return Y

    def _multiply_dedup(
        self, A: BCRSMatrix, X: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        """Unique-block-pool product (two modes; see :class:`_DedupPlan`).

        ``gemm``: compute ``T = pool @ X^T`` — every unique block
        against every block column of X — as one DGEMM, then gather
        each stored block's contribution from ``T``.  Work expands from
        ``nnzb`` to ``n_unique * nb_cols`` block products, so this mode
        needs heavy repetition (:data:`DEDUP_EXPANSION_LIMIT`).

        ``grouped``: sort stored blocks by pool row and run one batched
        GEMM per unique block against the X blocks its occurrences
        touch — exactly ``nnzb`` block products and only ``n_unique``
        block reads, at the cost of a Python loop over the pool
        (:data:`DEDUP_MAX_GROUPS`).

        Anything else delegates to ``tiled``.
        """
        plan = self.dedup_plan(A)
        if plan.mode == "fallback":
            return self._multiply_tiled(A, X, out)
        b = A.block_size
        m = X.shape[1]
        Xb = np.ascontiguousarray(X).reshape(A.nb_cols, b, m)
        if plan.mode == "gemm":
            # (b, nb_cols*m) operand: column j*m+v is X[block j, :, v].
            X2 = np.ascontiguousarray(Xb.transpose(1, 0, 2)).reshape(
                b, A.nb_cols * m
            )
            T = plan.pool_flat @ X2  # (n_unique * b, nb_cols * m)
            Tv = T.reshape(plan.n_unique, b, A.nb_cols, m)
            contrib = Tv[plan.inverse, :, A.col_ind, :]
        else:
            contrib = np.empty((A.nnzb, b, m))
            sorted_cols = A.col_ind[plan.perm]
            gp = plan.group_ptr
            for u in range(plan.n_unique):
                lo, hi = int(gp[u]), int(gp[u + 1])
                if lo == hi:
                    continue
                idx = plan.perm[lo:hi]
                # (b, b) @ (cnt, b, m) broadcasts to a batched GEMM.
                contrib[idx] = plan.pool[u] @ Xb[sorted_cols[lo:hi]]
        Yb = _segment_sum(contrib, A.row_ptr, A.nb_rows)
        Y = Yb.reshape(A.n_rows, m)
        if out is not None:
            np.copyto(out, Y)
            return out
        return Y


_DEFAULT = KernelRegistry()


def get_default_registry() -> KernelRegistry:
    """Return the process-wide shared :class:`KernelRegistry`."""
    return _DEFAULT


def set_default_engine(engine: str) -> str:
    """Rebind the default engine of the shared registry (CLI ``--engine``).

    Returns the previous default.  ``"auto"`` and every concrete engine
    name are accepted; availability is still checked per call, so
    setting ``"numba"`` in a numba-less environment degrades down the
    fallback ladder with a warning rather than failing.
    """
    if engine != "auto" and engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of "
            f"{('auto',) + ENGINE_NAMES}"
        )
    previous = _DEFAULT.default_engine
    _DEFAULT.default_engine = engine
    return previous
