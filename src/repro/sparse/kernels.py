"""Kernel machinery behind SPMV/GSPMV.

The paper's implementation "developed a code generator which, for a
given number of vectors m, produces a fully-unrolled SIMD kernel" —
i.e. kernel work is specialized once per ``m`` and reused every call.
Python cannot emit SIMD, but the same *shape* of specialization is
captured here: :class:`KernelRegistry` prepares, once per
``(block_size, m, engine)``, everything a product needs beyond the raw
arrays — the optimal einsum contraction path for the block kernel, or a
cached ``scipy.sparse`` BSR view of the matrix for the compiled engine —
and caches it.

Two engines are provided:

``"blocked"``
    A pure-NumPy reference kernel working directly on the BCRS arrays:
    gather X blocks by column index, batched ``3 x 3 @ 3 x m`` products
    (the paper's "basic kernel"), segment-sum per block row.  This
    engine is fully instrumentable (`repro.sparse.traffic` counts its
    exact memory traffic) and is the one the performance model reasons
    about.

``"scipy"``
    Delegates to ``scipy.sparse``'s C implementation via a cached BSR
    view.  This is the engine used for wall-clock measurements, since it
    is the closest a NumPy stack gets to the paper's compiled kernels.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Literal, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.sparse.bcrs import BCRSMatrix

__all__ = ["KernelRegistry", "get_default_registry", "Engine"]

Engine = Literal["blocked", "tiled", "scipy"]

#: Temporary-buffer budget of the "tiled" engine.  The per-tile
#: gather/contribution temporaries are ~2 * tile_nnzb * b * m * 8 bytes;
#: keeping them around L2-cache size is what makes cache blocking pay
#: (measured ~4x at m=16 on a DRAM-resident matrix).
TILE_BUDGET_BYTES = 2 * 2**20


def _segment_sum(contrib: np.ndarray, row_ptr: np.ndarray, nb: int) -> np.ndarray:
    """Sum ``contrib`` (nnzb, b, m) into per-block-row totals (nb, b, m).

    Uses ``np.add.reduceat`` with explicit handling of empty block rows:

    * a *middle* empty row has ``start_k == start_{k+1}``, for which
      reduceat returns ``contrib[start_k]`` — zeroed afterwards (the
      neighbouring segments are unaffected);
    * a *trailing* empty row has ``start == nnzb``, out of range for
      reduceat — those rows are excluded from the call entirely
      (clipping their index would silently truncate the previous row's
      segment, a bug the property suite caught).
    """
    b, m = contrib.shape[1], contrib.shape[2]
    nnzb = contrib.shape[0]
    out = np.zeros((nb, b, m))
    if nnzb == 0:
        return out
    starts = row_ptr[:-1]
    lengths = np.diff(row_ptr)
    in_range = starts < nnzb
    out[in_range] = np.add.reduceat(contrib, starts[in_range], axis=0)
    empty = lengths == 0
    if np.any(empty):
        out[empty] = 0.0
    return out


@dataclass
class _BlockedPlan:
    """Precomputed state for the blocked engine at a fixed (b, m)."""

    einsum_path: list
    m: int


class KernelRegistry:
    """Caches per-``m`` kernel plans and per-matrix scipy views.

    One registry (usually the module default) is shared by all products;
    its caches are keyed by weak references so matrices can be garbage
    collected.
    """

    def __init__(self) -> None:
        self._plans: Dict[Tuple[int, int], _BlockedPlan] = {}
        self._scipy_views: "weakref.WeakKeyDictionary[BCRSMatrix, sp.bsr_matrix]" = (
            weakref.WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    def blocked_plan(self, block_size: int, m: int) -> _BlockedPlan:
        """Return (building if needed) the blocked-engine plan for (b, m)."""
        key = (block_size, m)
        plan = self._plans.get(key)
        if plan is None:
            # Representative operands for path optimization only.
            blocks = np.empty((2, block_size, block_size))
            xgath = np.empty((2, block_size, m))
            path, _ = np.einsum_path(
                "kij,kjm->kim", blocks, xgath, optimize="optimal"
            )
            plan = _BlockedPlan(einsum_path=path, m=m)
            self._plans[key] = plan
        return plan

    def scipy_view(self, A: BCRSMatrix) -> sp.bsr_matrix:
        """Return (building if needed) a scipy BSR view of ``A``.

        The view shares ``A``'s block array; only index arrays are copied
        by scipy's constructor when dtype conversion is required.
        """
        view = self._scipy_views.get(A)
        if view is None:
            view = sp.bsr_matrix(
                (A.blocks, A.col_ind, A.row_ptr),
                shape=A.shape,
                blocksize=(A.block_size, A.block_size),
            )
            self._scipy_views[A] = view
        return view

    # ------------------------------------------------------------------
    def multiply(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        out: Optional[np.ndarray] = None,
        engine: Engine = "scipy",
    ) -> np.ndarray:
        """Compute ``Y = A @ X`` where ``X`` is ``(n, m)`` row-major.

        Parameters
        ----------
        A:
            The BCRS matrix.
        X:
            Multivector of shape ``(n_cols, m)`` (or ``(n_cols,)``,
            treated as m=1 and returned 1-D).
        out:
            Optional preallocated ``(n_rows, m)`` output (blocked engine
            always honours it; the scipy engine copies into it).
        engine:
            ``"blocked"`` or ``"scipy"``; see module docstring.
        """
        X = np.asarray(X, dtype=np.float64)
        squeeze = X.ndim == 1
        if squeeze:
            X = X[:, None]
        if X.shape[0] != A.n_cols:
            raise ValueError(
                f"X has {X.shape[0]} rows; matrix has {A.n_cols} columns"
            )
        out2d = out
        if out is not None and out.ndim == 1:
            out2d = out[:, None]
        if engine == "scipy":
            Y = self.scipy_view(A) @ X
            if out2d is not None:
                np.copyto(out2d, Y)
                Y = out2d
        elif engine == "blocked":
            Y = self._multiply_blocked(A, X, out2d)
        elif engine == "tiled":
            Y = self._multiply_tiled(A, X, out2d)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        if squeeze:
            return out if out is not None else Y[:, 0]
        return Y

    def _multiply_blocked(
        self, A: BCRSMatrix, X: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        b = A.block_size
        m = X.shape[1]
        plan = self.blocked_plan(b, m)
        # Gather the X blocks each stored block multiplies: (nnzb, b, m).
        Xb = np.ascontiguousarray(X).reshape(A.nb_cols, b, m)
        gathered = Xb[A.col_ind]
        # The paper's "basic kernel": (b x b) @ (b x m) for every block.
        contrib = np.einsum(
            "kij,kjm->kim", A.blocks, gathered, optimize=plan.einsum_path
        )
        Yb = _segment_sum(contrib, A.row_ptr, A.nb_rows)
        Y = Yb.reshape(A.n_rows, m)
        if out is not None:
            np.copyto(out, Y)
            return out
        return Y

    def _multiply_tiled(
        self,
        A: BCRSMatrix,
        X: np.ndarray,
        out: Optional[np.ndarray],
        tile_rows: Optional[int] = None,
    ) -> np.ndarray:
        """The blocked kernel with row tiling (cache blocking).

        Processes ``tile_rows`` block rows at a time so the gathered
        operand and contribution temporaries stay cache-resident instead
        of materializing an ``(nnzb, b, m)`` array — the paper's
        "cache blocking optimizations" for large matrices.  The default
        tile size adapts to m and the matrix density so the temporaries
        fit :data:`TILE_BUDGET_BYTES`.
        """
        b = A.block_size
        m = X.shape[1]
        if tile_rows is None:
            bytes_per_row = max(1.0, A.blocks_per_row) * b * m * 8 * 2
            tile_rows = max(64, int(TILE_BUDGET_BYTES / bytes_per_row))
        plan = self.blocked_plan(b, m)
        Xb = np.ascontiguousarray(X).reshape(A.nb_cols, b, m)
        use_out_directly = out is not None and out.flags["C_CONTIGUOUS"]
        Y = out if use_out_directly else np.empty((A.n_rows, m))
        Yb = Y.reshape(A.nb_rows, b, m)
        rp = A.row_ptr
        for start in range(0, A.nb_rows, tile_rows):
            end = min(start + tile_rows, A.nb_rows)
            lo, hi = int(rp[start]), int(rp[end])
            contrib = np.einsum(
                "kij,kjm->kim",
                A.blocks[lo:hi],
                Xb[A.col_ind[lo:hi]],
                optimize=plan.einsum_path,
            )
            local_ptr = (rp[start : end + 1] - lo).astype(np.int64)
            Yb[start:end] = _segment_sum(contrib, local_ptr, end - start)
        if out is not None and not use_out_directly:
            np.copyto(out, Y)
            return out
        return Y


_DEFAULT = KernelRegistry()


def get_default_registry() -> KernelRegistry:
    """Return the process-wide shared :class:`KernelRegistry`."""
    return _DEFAULT
