"""Single-vector sparse matrix-vector product (SPMV).

This is the baseline kernel the paper improves on: it streams the whole
matrix from memory to do ``2*nnz`` flops, so it is bandwidth-bound on
every modern machine (the paper cites ~30% of peak flops as the best
published efficiency).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

import repro.telemetry as _telemetry
from repro.sparse.bcrs import BCRSMatrix
from repro.sparse.kernels import Engine, get_default_registry

__all__ = ["spmv"]


def spmv(
    A: BCRSMatrix,
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    engine: Optional[Engine] = None,
) -> np.ndarray:
    """Compute ``y = A @ x`` for a single vector ``x`` of length ``n``.

    Equivalent to ``gspmv`` with ``m = 1``; provided separately because
    the paper's algorithms and models distinguish ``T(1)`` from ``T(m)``.
    ``engine=None`` uses the registry default; ``"auto"`` and
    unavailable engines are resolved here so telemetry always records
    the engine that actually ran.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError("spmv expects a 1-D vector; use gspmv for multivectors")
    if out is not None and out.shape != (A.n_rows,):
        raise ValueError(f"out must have shape ({A.n_rows},)")
    reg = get_default_registry()
    engine = reg.resolve_engine(A, 1, engine)
    hub = _telemetry.active_hub
    if hub is None:
        return reg.multiply(A, x, out=out, engine=engine)
    t0 = time.perf_counter()
    y = reg.multiply(A, x, out=out, engine=engine)
    nb, nnzb, b = A.structure
    hub.record_gspmv("spmv", time.perf_counter() - t0, nb, nnzb, b, 1, engine)
    return y
