"""Sparse substrate: Block Compressed Row Storage and GSPMV kernels.

This package implements the storage format and the two kernels at the
heart of the paper:

* :class:`~repro.sparse.bcrs.BCRSMatrix` — Block Compressed Row Storage
  (Section IV.A1): an array of dense ``b x b`` non-zero blocks stored
  row-wise, a block column-index array, and a block row-pointer array.
* :func:`~repro.sparse.spmv.spmv` — the classical single-vector sparse
  matrix-vector product.
* :func:`~repro.sparse.gspmv.gspmv` — the *generalized* SPMV that
  multiplies the matrix by a block of ``m`` vectors simultaneously,
  amortizing the matrix stream over all vectors (Gropp et al. 1999).

Multivectors are stored **row-major** (C order, shape ``(n, m)``) to
match the paper's layout choice ("We store the m vectors in row-major
format to take advantage of spatial locality").

:mod:`repro.sparse.traffic` counts the exact memory traffic ``Mtr(m)``
and flops of a kernel invocation and estimates the cache-miss function
``k(m)`` of the paper's performance model.

:mod:`repro.sparse.enginewatch` is the self-healing runtime around the
kernel engines: an explicit fallback ladder for engine-tier failures,
cadence-based shadow verification against the reference kernel, and
per-shape quarantine of engines caught returning wrong numbers
(DESIGN.md §14).
"""

from repro.sparse.bcrs import BCRSMatrix
from repro.sparse.spmv import spmv
from repro.sparse.gspmv import gspmv, gspmv_into
from repro.sparse.kernels import (
    ENGINE_NAMES,
    KernelRegistry,
    available_engines,
    get_default_registry,
    set_default_engine,
)
from repro.sparse.autotune import AutoSelector
from repro.sparse.enginewatch import (
    DEFAULT_VERIFY_CADENCE,
    FALLBACK_LADDER,
    REFERENCE_ENGINE,
    CompileError,
    EngineEvent,
    EngineFailure,
    EngineWatch,
    KernelLoadError,
    LadderExhausted,
    get_engine_watch,
    shape_class,
)
from repro.sparse.traffic import (
    TrafficCounts,
    memory_traffic_bytes,
    flop_count,
    estimate_k,
)
from repro.sparse.convert import bcrs_from_scipy, bcrs_to_scipy
from repro.sparse.reorder import rcm_permutation, permute_bcrs, spatial_sort_keys

__all__ = [
    "BCRSMatrix",
    "spmv",
    "gspmv",
    "gspmv_into",
    "KernelRegistry",
    "get_default_registry",
    "ENGINE_NAMES",
    "available_engines",
    "set_default_engine",
    "AutoSelector",
    "EngineWatch",
    "EngineEvent",
    "EngineFailure",
    "CompileError",
    "KernelLoadError",
    "LadderExhausted",
    "FALLBACK_LADDER",
    "REFERENCE_ENGINE",
    "DEFAULT_VERIFY_CADENCE",
    "get_engine_watch",
    "shape_class",
    "TrafficCounts",
    "memory_traffic_bytes",
    "flop_count",
    "estimate_k",
    "bcrs_from_scipy",
    "bcrs_to_scipy",
    "rcm_permutation",
    "permute_bcrs",
    "spatial_sort_keys",
]
