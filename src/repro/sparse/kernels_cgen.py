"""Code-generated compiled GSPMV kernels (the ``cgen`` engine).

The paper's single-node wins came from a code generator: "for a given
number of vectors m, [it] produces a fully-unrolled SIMD kernel" that is
compiled once and reused for every product at that ``m``.  This module
is that generator for the reproduction: for each ``(block_size, m)`` it
emits a small C translation unit with both sizes baked in as
compile-time constants, compiles it with the system C compiler
(``-O3 -march=native``), and loads the shared object through
:mod:`ctypes`.

Two details carry the performance:

* **Register blocking over the vector dimension.**  A naive ``b x m``
  accumulator tile spills registers once ``b * m`` doubles exceed the
  register file (measured: m=16 runs 6x slower than m=8 without it).
  The generator therefore tiles ``m`` into chunks of
  :data:`VECTOR_CHUNK` and keeps one ``b x chunk`` accumulator in
  registers per pass — the paper's register-blocking optimization.
* **Compile-time constants.**  ``b``, ``m`` and the chunk width are
  ``enum`` constants, so the compiler fully unrolls the block loops and
  vectorizes the ``m``-contiguous inner loop (the row-major multivector
  layout exists exactly for this).

The pipeline is *hardened*, not merely guarded (DESIGN.md §14): no
compiler makes :func:`available` return ``False`` with a recorded
reason and the registry demotes down the fallback ladder; a failing
compile is retried (:data:`COMPILE_RETRIES`) under a subprocess timeout
(:data:`COMPILE_TIMEOUT_SECONDS`) and then raises a narrow
:class:`~repro.sparse.enginewatch.CompileError`; compiled objects are
published atomically with a content-checksum sidecar that is validated
on every load, and a truncated or foreign cache entry is deleted,
rebuilt once, and recorded as an :class:`~repro.sparse.enginewatch.
EngineEvent` instead of being trusted or silently swallowed.  Every
loaded kernel also passes an exact identity-product smoke test before
it is cached.  Fault-injection sites ``engine.compile`` and
``engine.load`` (see :mod:`repro.resilience.faults`) make both failure
paths deterministically testable.
"""

from __future__ import annotations

import ctypes
import hashlib
import itertools
import os
import platform
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.resilience.faults import fire_fault
from repro.sparse.enginewatch import CompileError, EngineFailure, KernelLoadError

__all__ = [
    "available",
    "unavailable_reason",
    "get_kernel",
    "gspmv_cgen",
    "default_cache_dir",
    "VECTOR_CHUNK",
    "COMPILE_TIMEOUT_SECONDS",
    "COMPILE_RETRIES",
]

#: Accumulator tile width in vectors.  8 doubles fills two AVX2 (or one
#: AVX-512) register per block row, leaving room for the ``b x b`` block
#: operands; measured best or tied for every m on the dev machines.
VECTOR_CHUNK = 8

_CC_CANDIDATES = ("cc", "gcc", "clang")
_CFLAGS = ("-O3", "-march=native", "-funroll-loops", "-shared", "-fPIC")

#: Hard ceiling on one compiler invocation — a wedged compiler (or a
#: filesystem that hangs) must not stall the simulation indefinitely.
COMPILE_TIMEOUT_SECONDS = 60.0

#: Failed compiles are retried this many times (transient ENOSPC /
#: OOM-killed cc1 / timeout) before :class:`CompileError` is raised.
COMPILE_RETRIES = 2

_kernels: Dict[Tuple[int, int], Callable] = {}
_available: Optional[bool] = None
_unavailable_reason: str = ""


def _record(watch, kind: str, b: int, m: int, reason: str) -> None:
    """Report a pipeline incident to the engine watchdog, if wired."""
    if watch is not None:
        watch.record(kind, "cgen", shape=f"b{b}:m{m}", reason=reason)


def default_cache_dir() -> Path:
    """Directory for compiled kernel objects (override: REPRO_CACHE_DIR)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "cgen"
    return Path.home() / ".cache" / "repro" / "cgen"


def _cpu_token() -> str:
    """A short token identifying the CPU so ``-march=native`` objects are
    never loaded on a different microarchitecture."""
    text = platform.machine()
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith(("model name", "flags")):
                    text += line
                    if line.startswith("flags"):
                        break
    except OSError:
        pass
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def _find_cc() -> Optional[str]:
    for cc in _CC_CANDIDATES:
        try:
            subprocess.run(
                [cc, "--version"],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                check=True,
            )
            return cc
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def generate_source(b: int, m: int, chunk: int = VECTOR_CHUNK) -> str:
    """Emit the C source of the GSPMV kernel specialized to ``(b, m)``.

    The signature mirrors the BCRS arrays exactly: ``row_ptr``/
    ``col_ind`` are int32 (the 4-byte indices of the paper's traffic
    model), ``blocks`` is ``(nnzb, b, b)`` and ``X``/``Y`` are row-major
    ``(n, m)`` multivectors.
    """
    vc = min(chunk, m)
    while m % vc:
        vc -= 1
    return f"""
#include <stdint.h>

void gspmv(int64_t nb, const int32_t *restrict row_ptr,
           const int32_t *restrict col_ind,
           const double *restrict blocks,
           const double *restrict X, double *restrict Y) {{
    enum {{ B = {b}, M = {m}, VC = {vc} }};
    for (int64_t i = 0; i < nb; ++i) {{
        const int32_t lo = row_ptr[i], hi = row_ptr[i + 1];
        double *restrict ys = Y + i * B * M;
        for (int v0 = 0; v0 < M; v0 += VC) {{
            double acc[B][VC];
            for (int r = 0; r < B; ++r)
                for (int v = 0; v < VC; ++v)
                    acc[r][v] = 0.0;
            for (int32_t kk = lo; kk < hi; ++kk) {{
                const double *restrict blk = blocks + (int64_t)kk * B * B;
                const double *restrict xs =
                    X + (int64_t)col_ind[kk] * B * M + v0;
                for (int r = 0; r < B; ++r)
                    for (int c = 0; c < B; ++c) {{
                        const double a = blk[r * B + c];
                        #pragma GCC ivdep
                        for (int v = 0; v < VC; ++v)
                            acc[r][v] += a * xs[c * M + v];
                    }}
            }}
            for (int r = 0; r < B; ++r)
                for (int v = 0; v < VC; ++v)
                    ys[r * M + v0 + v] = acc[r][v];
        }}
    }}
}}
"""


def _sidecar(so_path: Path) -> Path:
    """The checksum sidecar published next to a compiled object."""
    return so_path.with_name(so_path.name + ".sha256")


def _digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _checksum_ok(so_path: Path) -> bool:
    """True when the object matches its sidecar digest.

    A missing sidecar counts as a failure: it means the entry was not
    published by this pipeline (foreign file, torn write) and must not
    be trusted or dlopen'd.
    """
    try:
        expected = _sidecar(so_path).read_text(encoding="utf-8").strip()
        return bool(expected) and _digest(so_path) == expected
    except OSError:
        return False


def _discard(so_path: Path) -> None:
    """Delete a cache entry (object + sidecar), ignoring races."""
    for path in (so_path, _sidecar(so_path)):
        try:
            path.unlink()
        except OSError:
            pass


def _compile(b: int, m: int, cache_dir: Path, watch=None) -> Path:
    """Compile (or reuse) the shared object for ``(b, m)``.

    Raises :class:`CompileError` — never a bare subprocess error —
    after :data:`COMPILE_RETRIES` bounded-timeout attempts.  A cached
    entry that fails its checksum is deleted and rebuilt (recorded as a
    ``cache_recover`` event) instead of being returned.
    """
    cc = _find_cc()
    if cc is None:
        raise CompileError("no C compiler found")
    if fire_fault("engine.compile", b=b, m=m) is not None:
        raise CompileError(f"injected compile failure for (b={b}, m={m})")
    src = generate_source(b, m)
    token = hashlib.sha256(
        (src + cc + _cpu_token() + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    so_path = cache_dir / f"gspmv_b{b}_m{m}_{token}.so"
    if so_path.exists():
        if _checksum_ok(so_path):
            return so_path
        _record(
            watch, "cache_recover", b, m,
            f"{so_path.name}: cached object failed checksum; rebuilding",
        )
        _discard(so_path)
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise CompileError(f"cannot create kernel cache dir: {exc}") from exc
    last_error: Optional[BaseException] = None
    for attempt in range(1 + COMPILE_RETRIES):
        try:
            with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
                c_path = Path(tmp) / "kernel.c"
                c_path.write_text(src, encoding="utf-8")
                tmp_so = Path(tmp) / "kernel.so"
                subprocess.run(
                    [cc, *_CFLAGS, "-o", str(tmp_so), str(c_path)],
                    check=True,
                    timeout=COMPILE_TIMEOUT_SECONDS,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                digest = _digest(tmp_so)
                tmp_sc = Path(tmp) / "kernel.so.sha256"
                tmp_sc.write_text(digest, encoding="utf-8")
                # Atomic publish, object first: another process racing
                # the same key lands on an identical object, so the last
                # rename simply wins; a crash between the two renames
                # leaves an entry without (or with a stale) sidecar,
                # which the checksum gate rejects and rebuilds.
                os.replace(tmp_so, so_path)
                os.replace(tmp_sc, _sidecar(so_path))
            return so_path
        except (
            subprocess.CalledProcessError,
            subprocess.TimeoutExpired,
            OSError,
        ) as exc:
            last_error = exc
            if attempt < COMPILE_RETRIES:
                _record(
                    watch, "compile_retry", b, m,
                    f"attempt {attempt + 1} failed: {exc!r}",
                )
    raise CompileError(
        f"compiling gspmv (b={b}, m={m}) failed after "
        f"{1 + COMPILE_RETRIES} attempts: {last_error!r}"
    )


_load_serial = itertools.count()


def _load(so_path: Path) -> Callable:
    """dlopen the object, immune to the loader's pathname cache.

    glibc's dlopen returns an already-loaded library when the *name*
    matches, without re-reading the file — so reloading a rebuilt
    object under a previously-loaded (now stale or truncated) name
    would hand back the broken old mapping and SIGBUS later.  Loading
    through a unique hardlink forces a fresh name; the loader's
    dev/inode dedup still reuses the mapping when the file really is
    the same one.
    """
    link = so_path.with_name(
        f".load-{os.getpid()}-{next(_load_serial)}-{so_path.name}"
    )
    try:
        os.link(so_path, link)
    except OSError:
        link = None  # exotic filesystem: fall back to the plain path
    try:
        lib = ctypes.CDLL(str(link if link is not None else so_path))
    finally:
        if link is not None:
            try:
                link.unlink()
            except OSError:
                pass
    fn = lib.gspmv
    fn.argtypes = [
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int32),
        ctypes.POINTER(ctypes.c_int32),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
    ]
    fn.restype = None
    return fn


def _smoke_test(fn: Callable, b: int, m: int) -> None:
    """Exact identity-product check of a freshly loaded kernel.

    ``I @ X == X`` holds bit-for-bit (each output element is one
    ``1.0 * x`` multiply-add from zero), so any deviation means the
    object is miscompiled or corrupt — not a rounding difference.
    """
    rp = np.array([0, 1], dtype=np.int32)
    ci = np.array([0], dtype=np.int32)
    blk = np.ascontiguousarray(np.eye(b)[None, :, :])
    x = np.arange(1.0, b * m + 1.0).reshape(b, m)
    y = np.full((b, m), np.nan)
    _call(fn, 1, rp, ci, blk, x, y)
    if not np.array_equal(y, x):
        raise KernelLoadError(
            f"kernel (b={b}, m={m}) failed its identity smoke test"
        )


def _load_checked(so_path: Path, b: int, m: int) -> Callable:
    """Load a compiled object, validating checksum then behaviour."""
    spec = fire_fault("engine.load", b=b, m=m)
    if spec is not None:
        # Simulate a torn cache write.  Replace the inode rather than
        # truncating in place: an earlier dlopen of this object may
        # still map the old inode, and shrinking a mapped file makes
        # its pages SIGBUS when glibc's exit-time destructors walk the
        # loaded DSOs.
        try:
            data = so_path.read_bytes()
            so_path.unlink()
            so_path.write_bytes(data[: max(1, len(data) // 2)])
        except OSError:
            pass
    if not _checksum_ok(so_path):
        raise KernelLoadError(
            f"{so_path.name}: checksum mismatch or missing sidecar "
            "(truncated or foreign cache entry)"
        )
    try:
        fn = _load(so_path)
    except OSError as exc:
        raise KernelLoadError(f"{so_path.name}: dlopen failed: {exc}") from exc
    _smoke_test(fn, b, m)
    return fn


def get_kernel(b: int, m: int, watch=None) -> Callable:
    """Return (compiling on first use) the kernel for ``(b, m)``.

    A cache entry that fails validation on load is deleted, rebuilt
    once (recorded as a ``cache_recover`` event), and re-validated; a
    second failure raises :class:`KernelLoadError` for the registry's
    fallback ladder to handle.
    """
    key = (b, m)
    fn = _kernels.get(key)
    if fn is not None:
        return fn
    cache_dir = default_cache_dir()
    so_path = _compile(b, m, cache_dir, watch=watch)
    try:
        fn = _load_checked(so_path, b, m)
    except KernelLoadError as exc:
        _record(watch, "cache_recover", b, m, f"{exc}; rebuilding")
        _discard(so_path)
        so_path = _compile(b, m, cache_dir, watch=watch)
        fn = _load_checked(so_path, b, m)
    _kernels[key] = fn
    return fn


def available() -> bool:
    """True when the compiled tier works in this environment.

    Probes once per process by building (or loading from cache) a tiny
    kernel, which includes the identity smoke test.  Failure is scoped
    to the pipeline's own narrow exceptions — a missing compiler,
    compile/load trouble, a read-only cache — and the reason is kept
    for the registry's fallback event (:func:`unavailable_reason`);
    anything else (a genuine bug) propagates loudly.
    """
    global _available, _unavailable_reason
    if _available is None:
        if _find_cc() is None:
            _available = False
            _unavailable_reason = "no C compiler found"
        else:
            try:
                get_kernel(2, 1)
                _available = True
            except (EngineFailure, OSError) as exc:
                _available = False
                _unavailable_reason = str(exc)
    return _available


def unavailable_reason() -> str:
    """Why :func:`available` returned False ('' while available)."""
    available()
    return _unavailable_reason


def _reset() -> None:
    """Test hook: forget the probe verdict and all cached kernels."""
    global _available, _unavailable_reason
    _available = None
    _unavailable_reason = ""
    _kernels.clear()


def _ptr_i32(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _ptr_f64(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _call(fn, nb, row_ptr, col_ind, blocks, X, Y) -> None:
    fn(nb, _ptr_i32(row_ptr), _ptr_i32(col_ind), _ptr_f64(blocks),
       _ptr_f64(X), _ptr_f64(Y))


def gspmv_cgen(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    blocks: np.ndarray,
    X: np.ndarray,
    Y: np.ndarray,
    watch=None,
) -> None:
    """Run the compiled kernel: ``Y = A @ X`` into preallocated ``Y``.

    All arrays must be C-contiguous with the BCRS dtypes (int32 indices,
    float64 values); the caller (:class:`~repro.sparse.kernels.
    KernelRegistry`) guarantees this.  ``watch`` receives pipeline
    events (retries, cache recoveries) when provided.
    """
    b = blocks.shape[1] if blocks.ndim == 3 else 1
    m = X.shape[1]
    fn = get_kernel(b, m, watch=watch)
    _call(fn, len(row_ptr) - 1, row_ptr, col_ind, blocks, X, Y)
