"""Code-generated compiled GSPMV kernels (the ``cgen`` engine).

The paper's single-node wins came from a code generator: "for a given
number of vectors m, [it] produces a fully-unrolled SIMD kernel" that is
compiled once and reused for every product at that ``m``.  This module
is that generator for the reproduction: for each ``(block_size, m)`` it
emits a small C translation unit with both sizes baked in as
compile-time constants, compiles it with the system C compiler
(``-O3 -march=native``), and loads the shared object through
:mod:`ctypes`.

Two details carry the performance:

* **Register blocking over the vector dimension.**  A naive ``b x m``
  accumulator tile spills registers once ``b * m`` doubles exceed the
  register file (measured: m=16 runs 6x slower than m=8 without it).
  The generator therefore tiles ``m`` into chunks of
  :data:`VECTOR_CHUNK` and keeps one ``b x chunk`` accumulator in
  registers per pass — the paper's register-blocking optimization.
* **Compile-time constants.**  ``b``, ``m`` and the chunk width are
  ``enum`` constants, so the compiler fully unrolls the block loops and
  vectorizes the ``m``-contiguous inner loop (the row-major multivector
  layout exists exactly for this).

Everything is guarded: no compiler, a failed compile, or a sandboxed
filesystem simply makes :func:`available` return ``False`` and the
registry falls back to the NumPy engines.  Compiled objects are cached
on disk (keyed by sizes, compiler version and CPU model) so later
processes skip the ~0.5 s compile.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "available",
    "get_kernel",
    "gspmv_cgen",
    "default_cache_dir",
    "VECTOR_CHUNK",
]

#: Accumulator tile width in vectors.  8 doubles fills two AVX2 (or one
#: AVX-512) register per block row, leaving room for the ``b x b`` block
#: operands; measured best or tied for every m on the dev machines.
VECTOR_CHUNK = 8

_CC_CANDIDATES = ("cc", "gcc", "clang")
_CFLAGS = ("-O3", "-march=native", "-funroll-loops", "-shared", "-fPIC")

_kernels: Dict[Tuple[int, int], Callable] = {}
_available: Optional[bool] = None


def default_cache_dir() -> Path:
    """Directory for compiled kernel objects (override: REPRO_CACHE_DIR)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env) / "cgen"
    return Path.home() / ".cache" / "repro" / "cgen"


def _cpu_token() -> str:
    """A short token identifying the CPU so ``-march=native`` objects are
    never loaded on a different microarchitecture."""
    text = platform.machine()
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as fh:
            for line in fh:
                if line.startswith(("model name", "flags")):
                    text += line
                    if line.startswith("flags"):
                        break
    except OSError:
        pass
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def _find_cc() -> Optional[str]:
    for cc in _CC_CANDIDATES:
        try:
            subprocess.run(
                [cc, "--version"],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                check=True,
            )
            return cc
        except (OSError, subprocess.CalledProcessError):
            continue
    return None


def generate_source(b: int, m: int, chunk: int = VECTOR_CHUNK) -> str:
    """Emit the C source of the GSPMV kernel specialized to ``(b, m)``.

    The signature mirrors the BCRS arrays exactly: ``row_ptr``/
    ``col_ind`` are int32 (the 4-byte indices of the paper's traffic
    model), ``blocks`` is ``(nnzb, b, b)`` and ``X``/``Y`` are row-major
    ``(n, m)`` multivectors.
    """
    vc = min(chunk, m)
    while m % vc:
        vc -= 1
    return f"""
#include <stdint.h>

void gspmv(int64_t nb, const int32_t *restrict row_ptr,
           const int32_t *restrict col_ind,
           const double *restrict blocks,
           const double *restrict X, double *restrict Y) {{
    enum {{ B = {b}, M = {m}, VC = {vc} }};
    for (int64_t i = 0; i < nb; ++i) {{
        const int32_t lo = row_ptr[i], hi = row_ptr[i + 1];
        double *restrict ys = Y + i * B * M;
        for (int v0 = 0; v0 < M; v0 += VC) {{
            double acc[B][VC];
            for (int r = 0; r < B; ++r)
                for (int v = 0; v < VC; ++v)
                    acc[r][v] = 0.0;
            for (int32_t kk = lo; kk < hi; ++kk) {{
                const double *restrict blk = blocks + (int64_t)kk * B * B;
                const double *restrict xs =
                    X + (int64_t)col_ind[kk] * B * M + v0;
                for (int r = 0; r < B; ++r)
                    for (int c = 0; c < B; ++c) {{
                        const double a = blk[r * B + c];
                        #pragma GCC ivdep
                        for (int v = 0; v < VC; ++v)
                            acc[r][v] += a * xs[c * M + v];
                    }}
            }}
            for (int r = 0; r < B; ++r)
                for (int v = 0; v < VC; ++v)
                    ys[r * M + v0 + v] = acc[r][v];
        }}
    }}
}}
"""


def _compile(b: int, m: int, cache_dir: Path) -> Path:
    """Compile (or reuse) the shared object for ``(b, m)``."""
    cc = _find_cc()
    if cc is None:
        raise RuntimeError("no C compiler found")
    src = generate_source(b, m)
    token = hashlib.sha256(
        (src + cc + _cpu_token() + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    so_path = cache_dir / f"gspmv_b{b}_m{m}_{token}.so"
    if so_path.exists():
        return so_path
    cache_dir.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=cache_dir) as tmp:
        c_path = Path(tmp) / "kernel.c"
        c_path.write_text(src, encoding="utf-8")
        tmp_so = Path(tmp) / "kernel.so"
        subprocess.run(
            [cc, *_CFLAGS, "-o", str(tmp_so), str(c_path)],
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Atomic publish: another process racing the same key lands on
        # an identical object, so the last rename simply wins.
        os.replace(tmp_so, so_path)
    return so_path


def _load(so_path: Path) -> Callable:
    lib = ctypes.CDLL(str(so_path))
    fn = lib.gspmv
    fn.argtypes = [
        ctypes.c_int64,
        ctypes.POINTER(ctypes.c_int32),
        ctypes.POINTER(ctypes.c_int32),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
    ]
    fn.restype = None
    return fn


def get_kernel(b: int, m: int) -> Callable:
    """Return (compiling on first use) the kernel for ``(b, m)``."""
    key = (b, m)
    fn = _kernels.get(key)
    if fn is None:
        fn = _load(_compile(b, m, default_cache_dir()))
        _kernels[key] = fn
    return fn


def available() -> bool:
    """True when the compiled tier works in this environment.

    Probes once per process by building (or loading from cache) a tiny
    kernel and multiplying a 1-block matrix; any failure — no compiler,
    read-only cache, dlopen error — marks the tier unavailable.
    """
    global _available
    if _available is None:
        try:
            fn = get_kernel(2, 1)
            rp = np.array([0, 1], dtype=np.int32)
            ci = np.array([0], dtype=np.int32)
            blk = np.eye(2)[None, :, :]
            x = np.array([[1.0], [2.0]])
            y = np.empty((2, 1))
            _call(fn, 1, rp, ci, blk, x, y)
            _available = bool(np.allclose(y, x))
        except Exception:
            _available = False
    return _available


def _ptr_i32(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int32))


def _ptr_f64(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _call(fn, nb, row_ptr, col_ind, blocks, X, Y) -> None:
    fn(nb, _ptr_i32(row_ptr), _ptr_i32(col_ind), _ptr_f64(blocks),
       _ptr_f64(X), _ptr_f64(Y))


def gspmv_cgen(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    blocks: np.ndarray,
    X: np.ndarray,
    Y: np.ndarray,
) -> None:
    """Run the compiled kernel: ``Y = A @ X`` into preallocated ``Y``.

    All arrays must be C-contiguous with the BCRS dtypes (int32 indices,
    float64 values); the caller (:class:`~repro.sparse.kernels.
    KernelRegistry`) guarantees this.
    """
    b = blocks.shape[1] if blocks.ndim == 3 else 1
    m = X.shape[1]
    fn = get_kernel(b, m)
    _call(fn, len(row_ptr) - 1, row_ptr, col_ind, blocks, X, Y)
