"""Numba-jitted GSPMV kernels (the ``numba`` engine).

A second compiled tier alongside :mod:`repro.sparse.kernels_cgen`: the
same BCRS block-row walk, JIT-compiled by Numba with a parallel
``prange`` over block rows.  On multi-core machines the parallel loop
is what the ``cgen`` tier lacks; on single-core machines the two tiers
are near-identical and the auto-selector keeps whichever measures
faster.

The import is guarded: environments without Numba (the project's
baseline — it is deliberately *not* a dependency) get
``HAVE_NUMBA = False`` and the registry falls back to the NumPy
engines.  Kernels are specialized per ``(block_size, m)`` by baking
both sizes into the jitted closure as compile-time constants, mirroring
the paper's per-``m`` code generation; Numba then unrolls and
vectorizes the fixed-trip-count block loops.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.sparse.enginewatch import EngineFailure

__all__ = ["HAVE_NUMBA", "available", "get_kernel", "gspmv_numba"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the baseline environment
    numba = None
    HAVE_NUMBA = False

_kernels: Dict[Tuple[int, int], Callable] = {}


def available() -> bool:
    """True when the Numba tier can be used in this process."""
    return HAVE_NUMBA


def _make_kernel(b: int, m: int) -> Callable:  # pragma: no cover - needs numba
    """Build a jitted kernel with ``b`` and ``m`` frozen at compile time."""

    @njit(parallel=True, cache=False, fastmath=False)
    def kernel(row_ptr, col_ind, blocks, X, Y):
        nb = row_ptr.shape[0] - 1
        for i in prange(nb):
            lo = row_ptr[i]
            hi = row_ptr[i + 1]
            for r in range(b):
                for v in range(m):
                    Y[i * b + r, v] = 0.0
            for kk in range(lo, hi):
                col = col_ind[kk]
                for r in range(b):
                    for c in range(b):
                        a = blocks[kk, r, c]
                        for v in range(m):
                            Y[i * b + r, v] += a * X[col * b + c, v]

    return kernel


def get_kernel(b: int, m: int) -> Callable:  # pragma: no cover - needs numba
    """Return (jitting on first use) the kernel for ``(b, m)``.

    Raises :class:`~repro.sparse.enginewatch.EngineFailure` when numba
    is missing or the JIT rejects the kernel, so the registry's
    fallback ladder (rather than the caller) absorbs the failure.
    """
    if not HAVE_NUMBA:
        raise EngineFailure("numba is not installed")
    key = (b, m)
    fn = _kernels.get(key)
    if fn is None:
        try:
            fn = _make_kernel(b, m)
        except Exception as exc:  # numba's TypingError zoo is not stable API
            raise EngineFailure(
                f"numba JIT failed for (b={b}, m={m}): {exc}"
            ) from exc
        _kernels[key] = fn
    return fn


def gspmv_numba(
    row_ptr: np.ndarray,
    col_ind: np.ndarray,
    blocks: np.ndarray,
    X: np.ndarray,
    Y: np.ndarray,
) -> None:  # pragma: no cover - needs numba
    """Run the jitted kernel: ``Y = A @ X`` into preallocated ``Y``."""
    b = blocks.shape[1]
    m = X.shape[1]
    fn = get_kernel(b, m)
    fn(row_ptr, col_ind, blocks, X, Y)
