"""Conversions between :class:`BCRSMatrix` and ``scipy.sparse``.

These exist for interoperability and cross-validation: every kernel in
:mod:`repro.sparse` is tested against scipy's CSR/BSR products, and the
solvers accept either representation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.bcrs import BCRSMatrix

__all__ = ["bcrs_from_scipy", "bcrs_to_scipy"]


def bcrs_to_scipy(A: BCRSMatrix, format: str = "csr") -> sp.spmatrix:
    """Convert a BCRS matrix to a scipy sparse matrix.

    Parameters
    ----------
    A:
        The matrix to convert.
    format:
        Any scipy sparse format name (``"csr"``, ``"bsr"``, ``"csc"``...).
    """
    bsr = sp.bsr_matrix(
        (A.blocks.copy(), A.col_ind.copy(), A.row_ptr.copy()),
        shape=A.shape,
        blocksize=(A.block_size, A.block_size),
    )
    return bsr.asformat(format)


def bcrs_from_scipy(M: sp.spmatrix, block_size: int = 3) -> BCRSMatrix:
    """Convert a scipy sparse matrix to BCRS with the given block size.

    The matrix dimensions must be multiples of ``block_size``.  Zero
    fill-in inside a touched block is stored explicitly (as in any
    blocked format); entirely-zero blocks are dropped.
    """
    n_rows, n_cols = M.shape
    if n_rows % block_size or n_cols % block_size:
        raise ValueError(
            f"matrix shape {M.shape} is not divisible by block_size={block_size}"
        )
    bsr = sp.bsr_matrix(M, blocksize=(block_size, block_size))
    bsr.sort_indices()
    # Drop explicit all-zero blocks so nnzb reflects true block structure.
    keep = np.flatnonzero(np.any(bsr.data != 0.0, axis=(1, 2)))
    if len(keep) != bsr.data.shape[0]:
        rows = np.repeat(
            np.arange(n_rows // block_size), np.diff(bsr.indptr)
        )[keep]
        return BCRSMatrix.from_block_coo(
            n_rows // block_size,
            n_cols // block_size,
            rows,
            bsr.indices[keep],
            bsr.data[keep],
            sum_duplicates=False,
        )
    return BCRSMatrix(
        row_ptr=bsr.indptr.astype(np.int64),
        col_ind=bsr.indices.astype(np.int64),
        blocks=np.ascontiguousarray(bsr.data, dtype=np.float64),
        nb_cols=n_cols // block_size,
    )
