"""Per-machine engine auto-selection (the ``auto`` engine).

The paper hand-picks its kernel per machine ("on Nehalem the generated
kernel, on Barcelona the compiler's"); this module automates that
choice.  The first time a product with a given ``(block_size, m,
shape-class)`` runs on a machine, :class:`AutoSelector` micro-benchmarks
every available engine on the actual matrix, keeps the fastest, and
caches the verdict — in memory for this process and as JSON on disk so
later runs skip the tuning entirely.

Shape classing is deliberately coarse: block-row count and fill are
bucketed by powers of two, because engine rankings flip with cache
residency and density, not with a 10% size change.  The disk cache key
includes a CPU token, so a copied cache directory never applies another
machine's verdicts (same policy as the ``cgen`` object cache).

The cache lives in ``kernel_autotune.json`` under the active telemetry
hub's directory when one is bound (so tuning verdicts land next to the
traces they explain), else under an explicit ``cache_dir``, else the
selection is process-memory only.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

import repro.telemetry as _telemetry
from repro.sparse.kernels_cgen import _cpu_token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.sparse.bcrs import BCRSMatrix
    from repro.sparse.kernels import KernelRegistry

__all__ = ["AutoSelector", "CACHE_FILENAME"]

CACHE_FILENAME = "kernel_autotune.json"

#: Target duration of one timing measurement; calls faster than this are
#: batched so the perf_counter resolution does not dominate.
_MIN_MEASURE_SECONDS = 2e-4


def _bucket(x: float) -> int:
    """log2 bucket: sizes within 2x land in the same shape class."""
    return int(math.log2(x)) if x >= 1 else 0


class AutoSelector:
    """Micro-benchmarks engines per ``(machine, b, m, shape-class)``.

    Parameters
    ----------
    registry:
        The :class:`~repro.sparse.kernels.KernelRegistry` whose engines
        are tuned; selections call ``registry.multiply`` directly (no
        telemetry, no re-resolution).
    cache_dir:
        Directory for the JSON verdict cache.  ``None`` defers to the
        active telemetry hub's directory at selection time.
    repeats:
        Timing repetitions per engine; the minimum is kept (the usual
        "best of k" defense against scheduler noise).
    """

    def __init__(
        self,
        registry: "KernelRegistry",
        cache_dir: Optional[Path] = None,
        repeats: int = 3,
    ) -> None:
        self.registry = registry
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.repeats = repeats
        self._memory: Dict[str, dict] = {}
        self._loaded_dirs: set = set()

    # ------------------------------------------------------------------
    # keys and persistence
    # ------------------------------------------------------------------
    def shape_key(self, A: "BCRSMatrix", m: int) -> str:
        """The cache key classing this (machine, matrix shape, m)."""
        return (
            f"{_cpu_token()}:b{A.block_size}:m{m}"
            f":nb{_bucket(A.nb_rows)}:bpr{_bucket(A.blocks_per_row)}"
        )

    def _resolve_dir(self) -> Optional[Path]:
        if self.cache_dir is not None:
            return self.cache_dir
        hub = _telemetry.active_hub
        return getattr(hub, "directory", None) if hub is not None else None

    def _load_disk(self, directory: Path) -> None:
        """Merge a directory's verdict file into memory (once per dir)."""
        marker = str(directory)
        if marker in self._loaded_dirs:
            return
        self._loaded_dirs.add(marker)
        path = directory / CACHE_FILENAME
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if isinstance(data, dict):
            for key, record in data.items():
                if isinstance(record, dict) and "engine" in record:
                    self._memory.setdefault(key, record)

    def _persist(self, directory: Path) -> None:
        """Atomically merge the in-memory verdicts into the disk cache."""
        path = directory / CACHE_FILENAME
        try:
            directory.mkdir(parents=True, exist_ok=True)
            try:
                merged = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(merged, dict):
                    merged = {}
            except (OSError, ValueError):
                merged = {}
            merged.update(self._memory)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".autotune-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(merged, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            pass  # read-only dir: selection still works, memory-only

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, A: "BCRSMatrix", m: int) -> str:
        """Return the fastest available engine for this shape class."""
        record = self.record(A, m)
        return record["engine"]

    def record(self, A: "BCRSMatrix", m: int) -> dict:
        """Like :meth:`select` but returns the full tuning record
        (``{"engine", "timings", "key"}``; timings in seconds/call)."""
        key = self.shape_key(A, m)
        record = self._memory.get(key)
        if record is None:
            directory = self._resolve_dir()
            if directory is not None:
                self._load_disk(directory)
                record = self._memory.get(key)
        if record is None:
            record = self._tune(A, m, key)
            self._memory[key] = record
            directory = self._resolve_dir()
            if directory is not None:
                self._persist(directory)
        return record

    def _tune(self, A: "BCRSMatrix", m: int, key: str) -> dict:
        from repro.sparse.kernels import available_engines

        rng = np.random.default_rng(0)
        X = rng.standard_normal((A.n_cols, m))
        out = np.empty((A.n_rows, m))
        timings: Dict[str, float] = {}
        for engine in available_engines():
            try:
                timings[engine] = self._time(
                    lambda e=engine: self.registry.multiply(
                        A, X, out=out, engine=e
                    )
                )
            except Exception:  # an engine that cannot run is just skipped
                continue
        if not timings:  # pragma: no cover - blocked/tiled always run
            raise RuntimeError("no kernel engine could be benchmarked")
        best = min(timings, key=timings.get)
        return {"engine": best, "timings": timings, "key": key}

    def _time(self, fn) -> float:
        """Best-of-``repeats`` seconds per call, batching fast calls."""
        fn()  # warmup: plan building, compilation, JIT
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        number = 1
        if dt < _MIN_MEASURE_SECONDS:
            number = int(math.ceil(_MIN_MEASURE_SECONDS / max(dt, 1e-7)))
        best = math.inf
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            for _ in range(number):
                fn()
            best = min(best, (time.perf_counter() - t0) / number)
        return best
