"""Per-machine engine auto-selection (the ``auto`` engine).

The paper hand-picks its kernel per machine ("on Nehalem the generated
kernel, on Barcelona the compiler's"); this module automates that
choice.  The first time a product with a given ``(block_size, m,
shape-class)`` runs on a machine, :class:`AutoSelector` micro-benchmarks
every available engine on the actual matrix, keeps the fastest, and
caches the verdict — in memory for this process and as JSON on disk so
later runs skip the tuning entirely.

Shape classing is deliberately coarse: block-row count and fill are
bucketed by powers of two, because engine rankings flip with cache
residency and density, not with a 10% size change.  The disk cache key
includes a CPU token, so a copied cache directory never applies another
machine's verdicts (same policy as the ``cgen`` object cache).

The cache lives in ``kernel_autotune.json`` under the active telemetry
hub's directory when one is bound (so tuning verdicts land next to the
traces they explain), else under an explicit ``cache_dir``, else the
selection is process-memory only.

The verdict cache is hardened (DESIGN.md §14): the file carries a
schema version, every entry carries a checksum and the host fingerprint
(CPU, BLAS stack, Python) it was tuned under.  A torn or foreign file
is rejected and rebuilt — recorded as an ``autotune_corrupt`` /
``autotune_stale`` :class:`~repro.sparse.enginewatch.EngineEvent`,
never a crash.  Tuning itself times engines through the registry's raw
dispatch so a broken engine is skipped (and logged), not silently timed
via its fallback rung; engines quarantined for the shape class are
excluded from both tuning and selection.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

import repro.telemetry as _telemetry
from repro.resilience.faults import fire_fault
from repro.sparse.enginewatch import (
    REFERENCE_ENGINE,
    EngineFailure,
    shape_class,
)
from repro.sparse.kernels_cgen import _cpu_token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.sparse.bcrs import BCRSMatrix
    from repro.sparse.kernels import KernelRegistry

__all__ = [
    "AutoSelector",
    "CACHE_FILENAME",
    "SCHEMA_VERSION",
    "host_fingerprint",
]

CACHE_FILENAME = "kernel_autotune.json"

#: Verdict-file schema.  v1 was a bare ``{key: record}`` mapping with no
#: integrity metadata; v2 wraps it as ``{"schema": 2, "entries": ...}``
#: with per-entry checksums and host fingerprints.  Any other shape is
#: rejected and rebuilt.
SCHEMA_VERSION = 2

#: Target duration of one timing measurement; calls faster than this are
#: batched so the perf_counter resolution does not dominate.
_MIN_MEASURE_SECONDS = 2e-4


def _bucket(x: float) -> int:
    """log2 bucket: sizes within 2x land in the same shape class."""
    return int(math.log2(x)) if x >= 1 else 0


def _blas_token() -> str:
    """A short token for the linear-algebra stack behind the engines.

    Engine rankings depend on the BLAS numpy/scipy were built against
    at least as much as on the CPU, so the fingerprint includes both
    library versions and (when numpy exposes it) the BLAS name.
    """
    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dep
        scipy_version = "none"
    blas = ""
    try:
        cfg = np.show_config(mode="dicts")
        deps = cfg.get("Build Dependencies", {}) if isinstance(cfg, dict) else {}
        info = deps.get("blas", {})
        blas = str(info.get("name", ""))
    except (TypeError, AttributeError):  # older numpy: no dict mode
        blas = ""
    return f"np{np.__version__}:sp{scipy_version}:{blas}"


def host_fingerprint() -> Dict[str, str]:
    """The identity a tuning verdict is only valid under."""
    return {
        "cpu": _cpu_token(),
        "blas": _blas_token(),
        "python": platform.python_version(),
    }


def _entry_checksum(record: dict) -> str:
    """Content hash of a verdict record (sans its own checksum field)."""
    payload = {k: v for k, v in record.items() if k != "checksum"}
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class AutoSelector:
    """Micro-benchmarks engines per ``(machine, b, m, shape-class)``.

    Parameters
    ----------
    registry:
        The :class:`~repro.sparse.kernels.KernelRegistry` whose engines
        are tuned; timing runs through the registry's raw dispatch so a
        failing engine is skipped rather than timed via its fallback.
    cache_dir:
        Directory for the JSON verdict cache.  ``None`` defers to the
        active telemetry hub's directory at selection time.
    repeats:
        Timing repetitions per engine; the minimum is kept (the usual
        "best of k" defense against scheduler noise).
    """

    def __init__(
        self,
        registry: "KernelRegistry",
        cache_dir: Optional[Path] = None,
        repeats: int = 3,
    ) -> None:
        self.registry = registry
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.repeats = repeats
        self._memory: Dict[str, dict] = {}
        self._loaded_dirs: set = set()

    @property
    def _watch(self):
        return self.registry.watch

    # ------------------------------------------------------------------
    # keys and persistence
    # ------------------------------------------------------------------
    def shape_key(self, A: "BCRSMatrix", m: int) -> str:
        """The cache key classing this (machine, matrix shape, m)."""
        return (
            f"{_cpu_token()}:b{A.block_size}:m{m}"
            f":nb{_bucket(A.nb_rows)}:bpr{_bucket(A.blocks_per_row)}"
        )

    def _resolve_dir(self) -> Optional[Path]:
        if self.cache_dir is not None:
            return self.cache_dir
        hub = _telemetry.active_hub
        return getattr(hub, "directory", None) if hub is not None else None

    def _reject_cache(self, path: Path, reason: str) -> None:
        """Discard an unusable verdict file: event + unlink + rebuild."""
        self._watch.record("autotune_corrupt", "auto", reason=reason)
        try:
            path.unlink()
        except OSError:
            pass

    def _load_disk(self, directory: Path) -> None:
        """Merge a directory's verdict file into memory (once per dir).

        Every layer is validated: torn/unparseable files and unknown
        schemas are rejected and rebuilt; entries failing their checksum
        are skipped (``autotune_corrupt``); entries tuned under a
        different host fingerprint are skipped (``autotune_stale``) but
        left on disk for the machine they belong to.
        """
        marker = str(directory)
        if marker in self._loaded_dirs:
            return
        self._loaded_dirs.add(marker)
        path = directory / CACHE_FILENAME
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return
        if fire_fault("engine.autotune_cache") is not None:
            raw = raw[: len(raw) // 2]  # simulate a torn write
        try:
            data = json.loads(raw)
        except ValueError:
            self._reject_cache(path, "unparseable JSON (torn write?)")
            return
        if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
            found = data.get("schema") if isinstance(data, dict) else None
            self._reject_cache(
                path,
                f"schema {found!r} != {SCHEMA_VERSION} — discarding "
                "and retuning",
            )
            return
        entries = data.get("entries")
        if not isinstance(entries, dict):
            self._reject_cache(path, "missing entries mapping")
            return
        host = host_fingerprint()
        for key, record in entries.items():
            if not isinstance(record, dict) or "engine" not in record:
                self._watch.record(
                    "autotune_corrupt", "auto",
                    reason=f"malformed entry {key!r}",
                )
                continue
            if record.get("checksum") != _entry_checksum(record):
                self._watch.record(
                    "autotune_corrupt", "auto",
                    reason=f"checksum mismatch for {key!r}",
                )
                continue
            if record.get("fingerprint") != host:
                self._watch.record(
                    "autotune_stale", "auto",
                    reason=f"host fingerprint changed for {key!r}",
                )
                continue
            self._memory.setdefault(key, record)

    def _persist(self, directory: Path) -> None:
        """Atomically merge the in-memory verdicts into the disk cache.

        Foreign-fingerprint entries already on disk are preserved (they
        belong to another machine sharing the cache directory); only a
        structurally invalid file is started over.
        """
        path = directory / CACHE_FILENAME
        try:
            directory.mkdir(parents=True, exist_ok=True)
            merged: Dict[str, dict] = {}
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
                if (
                    isinstance(data, dict)
                    and data.get("schema") == SCHEMA_VERSION
                    and isinstance(data.get("entries"), dict)
                ):
                    merged = dict(data["entries"])
            except (OSError, ValueError):
                merged = {}
            merged.update(self._memory)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".autotune-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(
                    {"schema": SCHEMA_VERSION, "entries": merged},
                    fh, indent=2, sort_keys=True,
                )
            os.replace(tmp, path)
        except OSError:
            pass  # read-only dir: selection still works, memory-only

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select(self, A: "BCRSMatrix", m: int) -> str:
        """Return the fastest available, non-quarantined engine for this
        shape class.

        When the cached winner has since been quarantined the next-best
        timed engine is used (falling back to the reference engine), so
        a checkpointed quarantine keeps overriding a stale verdict.
        """
        record = self.record(A, m)
        watch = self._watch
        if not watch.has_quarantines:
            return record["engine"]
        shape = shape_class(A, m)
        if not watch.is_quarantined(record["engine"], shape):
            return record["engine"]
        from repro.sparse.kernels import available_engines

        avail = set(available_engines())
        candidates = {
            e: t for e, t in record.get("timings", {}).items()
            if e in avail and not watch.is_quarantined(e, shape)
        }
        if candidates:
            return min(candidates, key=candidates.get)
        return REFERENCE_ENGINE

    def record(self, A: "BCRSMatrix", m: int) -> dict:
        """Like :meth:`select` but returns the full tuning record
        (``{"engine", "timings", "key", "fingerprint", "checksum"}``;
        timings in seconds/call)."""
        key = self.shape_key(A, m)
        record = self._memory.get(key)
        if record is None:
            directory = self._resolve_dir()
            if directory is not None:
                self._load_disk(directory)
                record = self._memory.get(key)
        if record is None:
            record = self._tune(A, m, key)
            self._memory[key] = record
            directory = self._resolve_dir()
            if directory is not None:
                self._persist(directory)
        return record

    def _tune(self, A: "BCRSMatrix", m: int, key: str) -> dict:
        from repro.sparse.kernels import available_engines

        watch = self._watch
        shape = shape_class(A, m)
        rng = np.random.default_rng(0)
        X = rng.standard_normal((A.n_cols, m))
        out = np.empty((A.n_rows, m))
        timings: Dict[str, float] = {}
        for engine in available_engines():
            if watch.is_quarantined(engine, shape):
                watch.record(
                    "autotune_skip", engine, shape, "quarantined"
                )
                continue
            try:
                timings[engine] = self._time(
                    lambda e=engine: self.registry._dispatch(A, X, out, e)
                )
            except (EngineFailure, OSError, ValueError, FloatingPointError) as exc:
                # A tier that cannot run is excluded from the ranking —
                # visibly, so a silently broken engine shows up in the
                # event log rather than as a mysteriously absent timing.
                watch.record("autotune_skip", engine, shape, str(exc))
                continue
        if not timings:  # pragma: no cover - blocked/tiled always run
            raise RuntimeError("no kernel engine could be benchmarked")
        best = min(timings, key=timings.get)
        record = {
            "engine": best,
            "timings": timings,
            "key": key,
            "fingerprint": host_fingerprint(),
        }
        record["checksum"] = _entry_checksum(record)
        return record

    def _time(self, fn) -> float:
        """Best-of-``repeats`` seconds per call, batching fast calls."""
        fn()  # warmup: plan building, compilation, JIT
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        number = 1
        if dt < _MIN_MEASURE_SECONDS:
            number = int(math.ceil(_MIN_MEASURE_SECONDS / max(dt, 1e-7)))
        best = math.inf
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            for _ in range(number):
                fn()
            best = min(best, (time.perf_counter() - t0) / number)
        return best
