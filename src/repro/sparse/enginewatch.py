"""Self-healing runtime for the GSPMV engine tier (the engine watchdog).

PR 6 made the hot path depend on per-machine compiled artifacts —
generated C objects, optional JIT kernels, an autotune verdict cache.
Those are exactly the components that fail in long unattended
campaigns: missing or broken compilers, truncated cache entries,
miscompiled kernels that return *wrong numbers* rather than raising.
The paper's premise is that GSPMV dominates runtime; this module's
premise is that a wrong-answer kernel is worse than a slow one.

Three cooperating pieces (see DESIGN.md §14):

**Fallback ladder.**  :data:`FALLBACK_LADDER` fixes the demotion order
``cgen → numba → dedup → tiled → blocked → scipy``.  Any engine-tier
failure (:class:`EngineFailure`: compile errors, load errors, missing
toolchains) demotes the product to the next available rung instead of
raising, and every demotion is a structured :class:`EngineEvent` —
recorded to the in-process ring, to telemetry counters
(``engine.events{kind=...,engine=...}``) and spans, and optionally to a
:class:`~repro.health.monitor.HealthMonitor` as a WARN/FATAL verdict.
Nothing is skipped silently.

**Shadow verification.**  With a cadence configured
(:meth:`EngineWatch.configure`, CLI ``--verify-kernels[=N]``), every
Nth product per ``(engine, shape class)`` is re-checked against the
pure-NumPy reference engine (``blocked``): normally a cheap sample of
block rows, periodically (:attr:`EngineWatch.full_every`) the full
product.  The comparison tolerance scales with ``b*m`` (the summation
length legitimate engines may reorder); non-finite reference entries
are excluded so NaNs already present in the *data* (e.g. injected
upstream) are not blamed on the kernel.

**Quarantine.**  A miscompare quarantines the engine for that shape
class — the product re-executes via the next rung, and every later
``resolve_engine`` routes around the quarantined engine.  Quarantine
state rides in checkpoints (:meth:`EngineWatch.to_state` /
:meth:`EngineWatch.load_state`, saved by
:class:`~repro.resilience.runner.ResilientRunner`) so a kill-and-resume
does not re-trust a kernel that was caught lying.

The watchdog costs one attribute check per multiply while disabled, and
the ladder is always active — verification is opt-in, fallback is not.
"""

from __future__ import annotations

import logging
import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Deque, Dict, Iterable, List, Optional, Set

import numpy as np

import repro.telemetry as _telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.health.monitor import HealthMonitor
    from repro.sparse.bcrs import BCRSMatrix

__all__ = [
    "EngineFailure",
    "CompileError",
    "KernelLoadError",
    "LadderExhausted",
    "EngineEvent",
    "EngineWatch",
    "FALLBACK_LADDER",
    "REFERENCE_ENGINE",
    "DEFAULT_VERIFY_CADENCE",
    "shape_class",
    "reference_rows",
    "get_engine_watch",
]

logger = logging.getLogger(__name__)


class EngineFailure(RuntimeError):
    """An engine-tier failure the fallback ladder can recover from.

    Raised by compiled tiers when they cannot produce a kernel (compile
    or load trouble, missing toolchain).  The registry catches exactly
    this type, records the demotion, and retries on the next rung —
    genuine numerical errors (MemoryError, ValueError from bad inputs)
    deliberately propagate.
    """


class CompileError(EngineFailure):
    """The C compile pipeline failed after its bounded retries."""


class KernelLoadError(EngineFailure):
    """A compiled object failed checksum, dlopen, or its smoke test."""


class LadderExhausted(EngineFailure):
    """No trustworthy engine remains below the failing rung.

    Unreachable in normal operation — the reference engine cannot be
    quarantined and needs no toolchain — but the ladder walk reports it
    honestly (as a FATAL health verdict) rather than looping.
    """


#: Demotion order.  Compiled tiers first (fastest, most fragile), the
#: NumPy tiers last; ``blocked`` is the reference the shadow checks
#: compare against and can never be quarantined.
FALLBACK_LADDER = ("cgen", "numba", "dedup", "tiled", "blocked", "scipy")

#: The trusted pure-NumPy engine shadow verification recomputes with.
REFERENCE_ENGINE = "blocked"

#: ``--verify-kernels`` with no value: verify every Nth product per
#: (engine, shape class) — plus the very first, so a bad kernel is
#: caught before it pollutes a long run.
DEFAULT_VERIFY_CADENCE = 64

#: Every Nth *verification* compares the full product instead of a
#: row sample (catches corruption outside the sampled rows).
DEFAULT_FULL_EVERY = 16

#: Block rows per sampled verification.
DEFAULT_SAMPLE_ROWS = 32

#: Per-element relative tolerance scale; the effective tolerance is
#: ``VERIFY_RTOL * b * m * (1 + |ref|)`` — proportional to the number
#: of floating-point terms engines may legally reorder, with ~100x
#: headroom over observed engine divergence.
VERIFY_RTOL = 1e-12

#: Event kinds that surface as health verdicts (everything else is
#: telemetry-only bookkeeping).
_WARN_KINDS = frozenset(
    {"verify_fail", "quarantine", "engine_failure", "fallback"}
)
_FATAL_KINDS = frozenset({"ladder_exhausted"})


def _bucket(x: float) -> int:
    """log2 bucket: sizes within 2x land in the same shape class."""
    return int(math.log2(x)) if x >= 1 else 0


def shape_class(A: "BCRSMatrix", m: int) -> str:
    """The quarantine key classing ``(matrix, m)``.

    Same coarse bucketing as the autotune shape key (engine behaviour
    flips with block size, m, and cache residency — not with a 10%
    size change) but without the CPU token: quarantine is a property of
    this process/checkpoint lineage, and staying conservative across a
    host change is the safe direction.
    """
    return (
        f"b{A.block_size}:m{m}"
        f":nb{_bucket(A.nb_rows)}:bpr{_bucket(A.blocks_per_row)}"
    )


def reference_rows(
    A: "BCRSMatrix", X: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Reference product restricted to ``rows`` (block-row indices).

    Shape ``(len(rows), b, m)``; the per-row cost is proportional to
    that row's fill, so sampling k of nb rows costs ~k/nb of a full
    reference product.
    """
    b = A.block_size
    m = X.shape[1]
    Xb = np.ascontiguousarray(X).reshape(A.nb_cols, b, m)
    out = np.zeros((len(rows), b, m))
    rp = A.row_ptr
    for i, r in enumerate(rows):
        lo, hi = int(rp[r]), int(rp[r + 1])
        if hi > lo:
            out[i] = np.einsum(
                "kij,kjm->kim", A.blocks[lo:hi], Xb[A.col_ind[lo:hi]]
            ).sum(axis=0)
    return out


@dataclass(frozen=True)
class EngineEvent:
    """One engine-tier incident: a demotion, miscompare, or recovery.

    ``kind`` vocabulary: ``fallback`` (unavailable tier routed around),
    ``engine_failure`` (an :class:`EngineFailure` demoted a product),
    ``verify_fail`` (shadow check miscompared), ``quarantine`` (an
    engine distrusted for a shape class), ``ladder_exhausted``,
    ``compile_retry``, ``cache_recover`` (bad cached object deleted and
    rebuilt), ``autotune_corrupt`` / ``autotune_stale`` /
    ``autotune_skip`` (verdict-cache hygiene).
    """

    kind: str
    engine: str
    shape: str = ""
    reason: str = ""
    step: int = -1


class EngineWatch:
    """Event log, quarantine set, and shadow-verification state.

    One instance lives on each :class:`~repro.sparse.kernels.
    KernelRegistry` (the default registry's instance — reachable via
    :func:`get_engine_watch` — is the one checkpoints serialize).
    """

    def __init__(self, history: int = 256) -> None:
        self.cadence: int = 0
        """Verify every Nth product per (engine, shape); 0 disables."""
        self.full_every: int = DEFAULT_FULL_EVERY
        self.sample_rows: int = DEFAULT_SAMPLE_ROWS
        self.rtol_scale: float = VERIFY_RTOL
        self.events: Deque[EngineEvent] = deque(maxlen=history)
        self.counts: Dict[str, int] = {}
        self.verifications: int = 0
        self.verify_failures: int = 0
        self.verify_seconds: float = 0.0
        self.current_step: int = -1
        """Step index stamped onto events (set by the runner)."""
        self._quarantined: Set[str] = set()
        self._calls: Dict[str, int] = {}
        self._verify_counts: Dict[str, int] = {}
        self._monitor: Optional["HealthMonitor"] = None

    # ------------------------------------------------------------------
    # configuration and wiring
    # ------------------------------------------------------------------
    def configure(
        self,
        cadence: Optional[int] = None,
        full_every: Optional[int] = None,
        sample_rows: Optional[int] = None,
    ) -> "EngineWatch":
        """Set verification knobs; returns self for chaining."""
        if cadence is not None:
            if cadence < 0:
                raise ValueError("cadence must be >= 0 (0 disables)")
            self.cadence = int(cadence)
        if full_every is not None:
            if full_every < 1:
                raise ValueError("full_every must be >= 1")
            self.full_every = int(full_every)
        if sample_rows is not None:
            if sample_rows < 1:
                raise ValueError("sample_rows must be >= 1")
            self.sample_rows = int(sample_rows)
        return self

    @property
    def enabled(self) -> bool:
        """True when shadow verification is on (the ladder always is)."""
        return self.cadence > 0

    def attach_monitor(self, monitor: Optional["HealthMonitor"]) -> None:
        """Route WARN/FATAL engine verdicts into a health monitor."""
        self._monitor = monitor

    def reset(self) -> None:
        """Forget everything: quarantines, counters, events, config."""
        self.cadence = 0
        self.full_every = DEFAULT_FULL_EVERY
        self.sample_rows = DEFAULT_SAMPLE_ROWS
        self.events.clear()
        self.counts.clear()
        self.verifications = 0
        self.verify_failures = 0
        self.verify_seconds = 0.0
        self.current_step = -1
        self._quarantined.clear()
        self._calls.clear()
        self._verify_counts.clear()
        self._monitor = None

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def record(
        self, kind: str, engine: str, shape: str = "", reason: str = ""
    ) -> EngineEvent:
        """Record one incident everywhere it must be visible.

        In-process ring + per-kind counts always; telemetry counter and
        a zero-duration span when a hub is active; a health verdict when
        a monitor is attached and the kind warrants one.
        """
        event = EngineEvent(
            kind=kind, engine=engine, shape=shape, reason=reason,
            step=self.current_step,
        )
        self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        hub = _telemetry.active_hub
        if hub is not None:
            hub.metrics.counter(
                "engine.events", kind=kind, engine=engine
            ).inc()
            # The unified bus line carries the correlation ids, so a
            # quarantine that strikes mid-job joins that job's story.
            hub.emit_event(
                "engine",
                kind,
                engine=engine,
                shape=shape,
                reason=reason[:160],
                step=self.current_step,
            )
            tr = hub.tracer
            tr.emit(
                "engine_event",
                start=tr.clock(),
                duration=0.0,
                parent_id=None,
                kind=kind,
                engine=engine,
                shape=shape,
                reason=reason[:160],
            )
        if self._monitor is not None and (
            kind in _WARN_KINDS or kind in _FATAL_KINDS
        ):
            from repro.health.invariants import Severity

            severity = (
                Severity.FATAL if kind in _FATAL_KINDS else Severity.WARN
            )
            self._monitor.observe_engine(
                check=f"engine-{kind}",
                severity=severity,
                message=f"{engine}[{shape}]: {reason}" if shape
                else f"{engine}: {reason}",
                step_index=self.current_step,
            )
        log = logger.error if kind in _FATAL_KINDS else logger.warning
        if kind in _WARN_KINDS or kind in _FATAL_KINDS:
            log("engine %s: %s [%s] %s", kind, engine, shape, reason)
        return event

    # ------------------------------------------------------------------
    # quarantine and the ladder
    # ------------------------------------------------------------------
    @staticmethod
    def _qkey(engine: str, shape: str) -> str:
        return f"{engine}|{shape}"

    @property
    def has_quarantines(self) -> bool:
        return bool(self._quarantined)

    @property
    def quarantined(self) -> List[str]:
        """Sorted ``"engine|shape"`` quarantine entries."""
        return sorted(self._quarantined)

    def quarantined_engines(self, shape: str) -> Set[str]:
        """Engine names quarantined for one shape class."""
        suffix = f"|{shape}"
        return {
            q.split("|", 1)[0] for q in self._quarantined if q.endswith(suffix)
        }

    def is_quarantined(self, engine: str, shape: str) -> bool:
        return self._qkey(engine, shape) in self._quarantined

    def quarantine(self, engine: str, shape: str, reason: str = "") -> None:
        """Distrust ``engine`` for ``shape`` until explicitly cleared.

        The reference engine is refused — it is the trust anchor the
        shadow checks compare against, so quarantining it would make
        every verdict circular.
        """
        if engine == REFERENCE_ENGINE:
            raise ValueError(
                f"the reference engine {REFERENCE_ENGINE!r} cannot be "
                "quarantined"
            )
        key = self._qkey(engine, shape)
        if key not in self._quarantined:
            self._quarantined.add(key)
            self.record("quarantine", engine, shape, reason)

    def clear_quarantine(
        self, engine: Optional[str] = None, shape: Optional[str] = None
    ) -> int:
        """Lift quarantines (both ``None``: all); returns the count."""
        doomed = [
            q for q in self._quarantined
            if (engine is None or q.split("|", 1)[0] == engine)
            and (shape is None or q.split("|", 1)[1] == shape)
        ]
        for q in doomed:
            self._quarantined.discard(q)
        return len(doomed)

    def next_rung(
        self,
        engine: str,
        available: Iterable[str],
        shape: Optional[str] = None,
    ) -> str:
        """The first ladder rung below ``engine`` that is available and
        (when ``shape`` is given) not quarantined.

        Raises :class:`LadderExhausted` — after recording the FATAL
        event — when nothing below qualifies.
        """
        avail = set(available)
        try:
            start = FALLBACK_LADDER.index(engine) + 1
        except ValueError:
            start = 0
        for rung in FALLBACK_LADDER[start:]:
            if rung not in avail:
                continue
            if shape is not None and self.is_quarantined(rung, shape):
                continue
            return rung
        self.record(
            "ladder_exhausted", engine, shape or "",
            reason="no trustworthy engine below this rung",
        )
        raise LadderExhausted(
            f"no available, non-quarantined engine below {engine!r}"
        )

    # ------------------------------------------------------------------
    # verification bookkeeping
    # ------------------------------------------------------------------
    def should_verify(self, engine: str, shape: str) -> bool:
        """Cadence gate: counts this product, True when it must be
        shadow-checked.  The first product per (engine, shape) is always
        checked so a bad kernel cannot pollute a long run first."""
        if self.cadence <= 0 or engine == REFERENCE_ENGINE:
            return False
        key = self._qkey(engine, shape)
        count = self._calls.get(key, 0) + 1
        self._calls[key] = count
        return count == 1 or count % self.cadence == 0

    def bump_verification(self, engine: str, shape: str) -> int:
        """1-based verification counter for (engine, shape) — drives
        the periodic full-product check."""
        key = self._qkey(engine, shape)
        count = self._verify_counts.get(key, 0) + 1
        self._verify_counts[key] = count
        return count

    def tolerance(self, b: int, m: int) -> float:
        """Per-element tolerance scale for a ``(b, m)`` product."""
        return self.rtol_scale * max(1, b) * max(1, m)

    def compare(self, got: np.ndarray, ref: np.ndarray, tol: float) -> bool:
        """Elementwise agreement within ``tol * (1 + |ref|)``.

        Positions where the *reference* is non-finite are excluded —
        NaNs already in the data are upstream's problem, not the
        kernel's; a non-finite ``got`` against a finite ``ref`` fails.
        """
        finite = np.isfinite(ref)
        if not np.all(finite):
            got = got[finite]
            ref = ref[finite]
        if got.size == 0:
            return True
        return bool(
            np.all(np.abs(got - ref) <= tol * (1.0 + np.abs(ref)))
        )

    def sample_block_rows(self, nb: int, count: int) -> np.ndarray:
        """Deterministic rotating row sample for verification ``count``.

        Strided coverage with a count-dependent offset, so repeated
        verifications of the same shape sweep different rows.
        """
        k = min(self.sample_rows, nb)
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        stride = max(1, nb // k)
        start = (count * 131) % nb
        return np.unique((start + np.arange(k) * stride) % nb)

    def note_verification(
        self, engine: str, ok: bool, seconds: float, full: bool
    ) -> None:
        """Account one completed shadow check."""
        self.verifications += 1
        self.verify_seconds += seconds
        if not ok:
            self.verify_failures += 1
        hub = _telemetry.active_hub
        if hub is not None:
            hub.metrics.counter("engine.verify.calls", engine=engine).inc()
            hub.metrics.counter("engine.verify.seconds").inc(seconds)
            if full:
                hub.metrics.counter("engine.verify.full").inc()
            if not ok:
                hub.metrics.counter(
                    "engine.verify.failures", engine=engine
                ).inc()

    # ------------------------------------------------------------------
    # checkpoint state
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """JSON/NPZ-friendly state: quarantines, counts, and the
        verification config (events stay in-process — the contract the
        checkpoint carries is *don't re-trust*, not the post-mortem)."""
        return {
            "cadence": int(self.cadence),
            "full_every": int(self.full_every),
            "sample_rows": int(self.sample_rows),
            "quarantined": list(self.quarantined),
            "counts": {k: int(v) for k, v in sorted(self.counts.items())},
            "verifications": int(self.verifications),
            "verify_failures": int(self.verify_failures),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore from :meth:`to_state` (resume path).

        Quarantines are unioned with anything already distrusted in
        this process; a configured cadence in the state re-arms
        verification only when this process has not set its own.
        """
        for entry in state.get("quarantined", []):
            self._quarantined.add(str(entry))
        for kind, value in state.get("counts", {}).items():
            self.counts[kind] = self.counts.get(kind, 0) + int(value)
        self.verifications += int(state.get("verifications", 0))
        self.verify_failures += int(state.get("verify_failures", 0))
        if self.cadence == 0 and int(state.get("cadence", 0)) > 0:
            self.cadence = int(state["cadence"])
            self.full_every = int(state.get("full_every", self.full_every))
            self.sample_rows = int(
                state.get("sample_rows", self.sample_rows)
            )


def get_engine_watch() -> EngineWatch:
    """The default registry's watchdog — the process-wide instance the
    CLI configures and checkpoints serialize."""
    from repro.sparse.kernels import get_default_registry

    return get_default_registry().watch
