"""Disk/memory governor: budgets and seniority for durable artifacts.

Every durable artifact the stack writes falls into one of three
**seniority classes**, youngest evicted first under pressure:

====================  ====  =============================================
class                 rank  contents
====================  ====  =============================================
``durable``              0  job journal + snapshot, checkpoint ``.npz``
``flight``               1  flight-recorder post-mortem bundles
``telemetry``            2  trace/events/metrics streams + exports
====================  ====  =============================================

The :class:`ResourceGovernor` never deletes class-0 artifacts and never
touches *active* stream files — :meth:`emergency_release` reclaims only
sealed telemetry segments (oldest first), then whole flight bundles
(oldest first).  Writers call it when the filesystem says ``ENOSPC``/
``EDQUOT``, giving the senior write (a checkpoint, a journal append)
one retry with reclaimed space before its own degraded ladder engages.

:class:`MemoryGuard` is the RSS-watermark counterpart: an edge-triggered
check (with hysteresis so one breach does not log every step) that the
runner and the job manager poll to shed warm state before the kernel's
OOM killer makes the decision for them.

This module deliberately imports neither :mod:`repro.io` nor
:mod:`repro.telemetry` at the top level — both sit above it in the
import graph.  The telemetry hub is attached late via
:meth:`ResourceGovernor.bind_hub`.
"""

from __future__ import annotations

import logging
import resource
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.resources.rotate import sealed_segments

__all__ = [
    "CLASS_DURABLE",
    "CLASS_FLIGHT",
    "CLASS_TELEMETRY",
    "MemoryGuard",
    "ResourceExhausted",
    "ResourceGovernor",
    "read_rss_bytes",
]

logger = logging.getLogger(__name__)

CLASS_DURABLE = 0
CLASS_FLIGHT = 1
CLASS_TELEMETRY = 2

#: Stream stems whose files (and sealed segments) are telemetry-class.
_TELEMETRY_STEMS = ("trace", "events", "metrics")


class ResourceExhausted(RuntimeError):
    """A class-0 (durable) write failed even after emergency release.

    Raised by the checkpoint spill ladder when neither the primary
    directory nor the spill directory can take the write: at that point
    continuing would mean silently losing resumable state, so the
    failure is surfaced FATAL instead.
    """


class ResourceGovernor:
    """Budget + seniority accounting for one artifact directory tree.

    Parameters
    ----------
    directory:
        Root under which the governed artifacts live (the telemetry
        directory; checkpoints/journal may live in subtrees of it or
        beside it — classification is by name, not location).
    stream_budget:
        Default :class:`~repro.resources.rotate.StreamBudget` handed to
        rotating writers created against this governor (``None`` keeps
        streams unbounded).
    spill_dir:
        Optional failover directory for class-0 checkpoint writes.
    flight_keep:
        Flight bundles retained by the recorder's own pruning.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        stream_budget: Optional[Any] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        flight_keep: int = 8,
    ) -> None:
        if flight_keep < 1:
            raise ValueError("flight_keep must be >= 1")
        self.directory = Path(directory)
        self.stream_budget = stream_budget
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.flight_keep = int(flight_keep)
        self.releases = 0
        self.released_bytes = 0
        self._hub: Optional[Any] = None
        self._shedding: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def bind_hub(self, hub: Any) -> None:
        """Attach the telemetry hub (late, to break the import cycle)."""
        self._hub = hub

    def _counter(self, name: str, **labels: Any):
        if self._hub is not None and getattr(self._hub, "metrics", None):
            return self._hub.metrics.counter(name, **labels)
        return None

    def _event(self, kind: str, **attrs: Any) -> None:
        if self._hub is not None:
            try:
                self._hub.emit_event("resources", kind, **attrs)
            except OSError:  # the bus itself sheds independently
                pass

    # ------------------------------------------------------------------
    # classification + usage accounting
    # ------------------------------------------------------------------
    @staticmethod
    def classify(path: Union[str, Path]) -> int:
        """Seniority class of one artifact path."""
        path = Path(path)
        if "flight" in path.parts[:-1]:
            return CLASS_FLIGHT
        stem = path.stem.split(".")[0]
        if stem in _TELEMETRY_STEMS and path.suffix in (
            ".jsonl",
            ".json",
            ".prom",
        ):
            return CLASS_TELEMETRY
        return CLASS_DURABLE

    def usage(self) -> Dict[str, int]:
        """Bytes on disk per seniority class under ``directory``."""
        totals = {"durable": 0, "flight": 0, "telemetry": 0}
        names = {CLASS_DURABLE: "durable", CLASS_FLIGHT: "flight",
                 CLASS_TELEMETRY: "telemetry"}
        if not self.directory.exists():
            return totals
        for entry in self.directory.rglob("*"):
            try:
                if not entry.is_file():
                    continue
                size = entry.stat().st_size
            except OSError:
                continue
            totals[names[self.classify(entry)]] += size
        return totals

    # ------------------------------------------------------------------
    # emergency release (seniority-ordered eviction)
    # ------------------------------------------------------------------
    def _sealed_telemetry_segments(self) -> List[Path]:
        """Sealed (never active) telemetry segments, oldest first."""
        out: List[Tuple[float, Path]] = []
        if not self.directory.exists():
            return []
        for stem in _TELEMETRY_STEMS:
            for active in self.directory.rglob(f"{stem}.jsonl"):
                if "flight" in active.parts:
                    continue
                for seg in sealed_segments(active):
                    try:
                        out.append((seg.stat().st_mtime, seg))
                    except OSError:
                        continue
        return [p for _, p in sorted(out, key=lambda t: (t[0], str(t[1])))]

    def _flight_bundles(self) -> List[Path]:
        flight = self.directory / "flight"
        if not flight.is_dir():
            return []
        return sorted(d for d in flight.iterdir() if d.is_dir())

    def emergency_release(self, need_bytes: Optional[int] = None) -> int:
        """Reclaim disk for a senior write; returns bytes freed.

        Evicts sealed telemetry segments oldest-first, then whole
        flight bundles oldest-first, stopping once ``need_bytes`` is
        freed (or everything junior is gone).  Class-0 artifacts and
        active stream files are never candidates.
        """
        freed = 0

        def done() -> bool:
            return need_bytes is not None and freed >= need_bytes

        for seg in self._sealed_telemetry_segments():
            if done():
                break
            try:
                size = seg.stat().st_size
                seg.unlink()
                freed += size
            except OSError:
                continue
        if not done():
            for bundle in self._flight_bundles():
                if done():
                    break
                for f in sorted(bundle.rglob("*"), reverse=True):
                    try:
                        if f.is_file():
                            freed += f.stat().st_size
                            f.unlink()
                        else:
                            f.rmdir()
                    except OSError:
                        continue
                try:
                    bundle.rmdir()
                except OSError:
                    pass
        self.releases += 1
        self.released_bytes += freed
        logger.warning(
            "emergency release reclaimed %d bytes of junior artifacts "
            "(sealed telemetry segments, then flight bundles)", freed,
        )
        counter = self._counter("resources.released_bytes")
        if counter is not None:
            counter.inc(freed)
        self._event("release", freed_bytes=freed, releases=self.releases)
        return freed

    # ------------------------------------------------------------------
    # notifications from writers (rotation / shed transitions)
    # ------------------------------------------------------------------
    def note_rotation(self, stream: str, target: Path, pruned: int) -> None:
        counter = self._counter("resources.rotations", stream=stream)
        if counter is not None:
            counter.inc()
        self._event(
            "rotate", stream=stream, segment=target.name,
            pruned_bytes=pruned,
        )

    def count_shed_line(self, stream: str) -> None:
        counter = self._counter("telemetry.shed", stream=stream)
        if counter is not None:
            counter.inc()

    def note_stream_shed(
        self, stream: str, path: Path, exc: OSError
    ) -> None:
        self._shedding[stream] = True
        self._event(
            "stream_shed", stream=stream, path=str(path),
            error=str(exc),
        )

    def note_stream_recovered(self, stream: str) -> None:
        self._shedding.pop(stream, None)
        self._event("stream_recovered", stream=stream)

    def note_flight_shed(self, reason: str, exc: OSError) -> None:
        counter = self._counter("resources.flight_shed")
        if counter is not None:
            counter.inc()
        logger.warning(
            "flight-recorder dump %r dropped (disk unavailable: %s)",
            reason, exc,
        )
        self._event("flight_shed", reason=reason, error=str(exc))

    @property
    def shedding_streams(self) -> List[str]:
        return sorted(self._shedding)


# ----------------------------------------------------------------------
# RSS watermark guard
# ----------------------------------------------------------------------
def read_rss_bytes() -> int:
    """Resident set size of this process, in bytes.

    Prefers ``/proc/self/status`` ``VmRSS`` (current RSS); falls back
    to ``ru_maxrss`` (peak, KiB on Linux) where procfs is unavailable.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


class MemoryGuard:
    """Edge-triggered RSS watermark check.

    :meth:`check` returns the current RSS on a **new** breach of the
    watermark and ``None`` otherwise; the guard re-arms only after RSS
    falls below ``hysteresis * watermark``, so a sustained breach
    reports once rather than every step.
    """

    def __init__(
        self,
        watermark_bytes: int,
        *,
        rss_fn: Optional[Callable[[], int]] = None,
        hysteresis: float = 0.9,
    ) -> None:
        if watermark_bytes <= 0:
            raise ValueError("watermark_bytes must be positive")
        if not 0.0 < hysteresis <= 1.0:
            raise ValueError("hysteresis must be in (0, 1]")
        self.watermark_bytes = int(watermark_bytes)
        self.rss_fn = rss_fn if rss_fn is not None else read_rss_bytes
        self.hysteresis = float(hysteresis)
        self.breaches = 0
        self._over = False

    def check(self) -> Optional[int]:
        rss = self.rss_fn()
        if self._over:
            if rss < self.hysteresis * self.watermark_bytes:
                self._over = False
            return None
        if rss >= self.watermark_bytes:
            self._over = True
            self.breaches += 1
            return rss
        return None
