"""Resource governance: budgets, seniority, rotation, and I/O faults.

See DESIGN.md §17.  The package sits *below* :mod:`repro.io` and
:mod:`repro.telemetry` in the import graph (both import from here), so
nothing in it may import those modules at the top level.
"""

from repro.resources.governor import (
    CLASS_DURABLE,
    CLASS_FLIGHT,
    CLASS_TELEMETRY,
    MemoryGuard,
    ResourceExhausted,
    ResourceGovernor,
    read_rss_bytes,
)
from repro.resources.iofaults import IO_FAULT_SITES, check_io_faults
from repro.resources.rotate import (
    DEFAULT_STREAM_BUDGET,
    RotatingJsonlWriter,
    SEAL_KEY,
    StreamBudget,
    parse_size,
    read_jsonl_stream,
    seal_valid,
    sealed_segments,
    stream_segments,
)

__all__ = [
    "CLASS_DURABLE",
    "CLASS_FLIGHT",
    "CLASS_TELEMETRY",
    "DEFAULT_STREAM_BUDGET",
    "IO_FAULT_SITES",
    "MemoryGuard",
    "ResourceExhausted",
    "ResourceGovernor",
    "RotatingJsonlWriter",
    "SEAL_KEY",
    "StreamBudget",
    "check_io_faults",
    "parse_size",
    "read_jsonl_stream",
    "read_rss_bytes",
    "seal_valid",
    "sealed_segments",
    "stream_segments",
]
