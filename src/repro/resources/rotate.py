"""Size-bounded rotation of append-only JSONL streams.

Every append-only stream in the stack (``trace.jsonl``,
``events.jsonl``, ``metrics.jsonl``) historically grew without bound.
A :class:`RotatingJsonlWriter` caps the *active* file at
``StreamBudget.max_segment_bytes``: when an append crosses the budget
the file is **sealed** — a final CRC line recording the segment's line
count and a CRC-32 over every preceding byte::

    {"__seal__": {"crc": "9a2b01ff", "lines": 4181}}

— and renamed to a numbered segment (``trace.000001.jsonl``), leaving
a fresh active file for the next append.  Only the newest
``keep_segments`` sealed segments are retained; older ones are pruned
(telemetry is the most junior seniority class — see
:mod:`repro.resources.governor`).

Readers (:func:`read_jsonl_stream`, backing ``read_trace`` and
``read_events``) span segment boundaries transparently, oldest segment
first, and apply the longest-valid-prefix rule **only to the newest
segment**: a crash tears at most the tail of the file currently being
appended to, so sealed segments are either fully readable or were
corrupted at rest (individually skipped lines are counted, never
raised — same contract as before rotation existed).

Degraded mode: when an append fails with an :class:`OSError` (real
``ENOSPC``/``EDQUOT``/``EIO``, or the injectable ``io.*`` fault sites)
the writer *sheds* — lines divert to a bounded in-memory ring, counted
under the ``telemetry.shed`` metric, and the disk is re-probed every
``retry_every`` appends.  Telemetry loss is the designed failure mode;
it must never cascade into the simulation or the journal.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.resources.iofaults import check_io_faults

__all__ = [
    "DEFAULT_STREAM_BUDGET",
    "RotatingJsonlWriter",
    "SEAL_KEY",
    "StreamBudget",
    "parse_size",
    "read_jsonl_stream",
    "seal_valid",
    "sealed_segments",
    "stream_segments",
]

logger = logging.getLogger(__name__)

SEAL_KEY = "__seal__"

#: Streams that have already logged their one-time rotation/shed WARN.
_WARNED: Set[str] = set()

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_size(text: str) -> int:
    """Parse ``"4096"`` / ``"64k"`` / ``"16m"`` / ``"2g"`` into bytes."""
    raw = str(text).strip().lower().rstrip("b")
    if not raw:
        raise ValueError(f"empty size {text!r}")
    mult = 1
    if raw[-1] in _SIZE_SUFFIXES:
        mult = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(f"unparseable size {text!r}") from exc
    if value <= 0:
        raise ValueError(f"size must be positive (got {text!r})")
    return int(value * mult)


@dataclass(frozen=True)
class StreamBudget:
    """Retention budget for one append-only JSONL stream.

    The conservative defaults bound every stream at roughly
    ``max_segment_bytes * (keep_segments + 1)`` on disk (sealed
    segments plus the active file) — about 80 MiB per stream — without
    any configuration.  Override per run with ``--stream-budget``.
    """

    max_segment_bytes: int = 16 << 20
    keep_segments: int = 4

    def __post_init__(self) -> None:
        if self.max_segment_bytes < 1024:
            raise ValueError("max_segment_bytes must be >= 1024")
        if self.keep_segments < 1:
            raise ValueError("keep_segments must be >= 1")

    @classmethod
    def parse(cls, text: str) -> Optional["StreamBudget"]:
        """Parse the CLI form ``SIZE[:KEEP]`` (``"16m:4"``, ``"512k"``).

        ``"0"``, ``"off"``, ``"none"`` and ``"unbounded"`` return
        ``None`` — rotation disabled, the pre-rotation behaviour.
        """
        raw = str(text).strip().lower()
        if raw in ("0", "off", "none", "unbounded"):
            return None
        keep = cls.keep_segments
        if ":" in raw:
            raw, keep_raw = raw.rsplit(":", 1)
            keep = int(keep_raw)
        return cls(max_segment_bytes=parse_size(raw), keep_segments=keep)


DEFAULT_STREAM_BUDGET = StreamBudget()


# ----------------------------------------------------------------------
# segment naming + discovery
# ----------------------------------------------------------------------
def _segment_path(path: Path, index: int) -> Path:
    return path.with_name(f"{path.stem}.{index:06d}{path.suffix}")


def _segment_index(path: Path, segment: Path) -> Optional[int]:
    name = segment.name
    prefix, suffix = path.stem + ".", path.suffix
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    middle = name[len(prefix) : len(name) - len(suffix)]
    return int(middle) if middle.isdigit() else None


def sealed_segments(path: Union[str, Path]) -> List[Path]:
    """Sealed segments of the stream at ``path``, oldest first."""
    path = Path(path)
    found: List[Tuple[int, Path]] = []
    for candidate in path.parent.glob(f"{path.stem}.*{path.suffix}"):
        index = _segment_index(path, candidate)
        if index is not None:
            found.append((index, candidate))
    return [p for _, p in sorted(found)]


def stream_segments(path: Union[str, Path]) -> List[Path]:
    """All on-disk pieces of the stream, oldest first, active file last."""
    path = Path(path)
    segments = sealed_segments(path)
    if path.exists():
        segments.append(path)
    return segments


def _parse_seal(line: bytes) -> Optional[Dict[str, Any]]:
    """The seal payload when ``line`` is a seal line, else ``None``."""
    if SEAL_KEY.encode() not in line:
        return None
    try:
        doc = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(doc, dict) and set(doc) == {SEAL_KEY}:
        payload = doc[SEAL_KEY]
        return payload if isinstance(payload, dict) else {}
    return None


def seal_valid(segment: Union[str, Path]) -> bool:
    """Verify a sealed segment's trailing CRC line against its content."""
    raw = Path(segment).read_bytes()
    head, _, tail = raw.rstrip(b"\n").rpartition(b"\n")
    seal = _parse_seal(tail)
    if seal is None:
        return False
    body = head + b"\n" if head else b""
    crc = zlib.crc32(body) & 0xFFFFFFFF
    lines = sum(1 for ln in body.split(b"\n") if ln.strip())
    return seal.get("crc") == f"{crc:08x}" and seal.get("lines") == lines


# ----------------------------------------------------------------------
# segment-spanning reader
# ----------------------------------------------------------------------
_DECODE_ERRORS = (ValueError, KeyError, TypeError, UnicodeDecodeError)


def read_jsonl_stream(
    path: Union[str, Path],
    decode: Callable[[bytes], Any],
    *,
    missing_ok: bool = True,
) -> Tuple[List[Any], int]:
    """Read a (possibly rotated) JSONL stream; ``(items, skipped)``.

    Segments are concatenated oldest first.  The longest-valid-prefix
    rule — stop at the first undecodable line and count the remainder
    as skipped — applies only to the **newest** segment (the one a
    crash can tear); in sealed segments an undecodable line is counted
    and skipped individually, so older history stays fully readable.
    Seal lines are consumed silently.
    """
    path = Path(path)
    segments = stream_segments(path)
    if not segments:
        if missing_ok:
            return [], 0
        raise FileNotFoundError(str(path))
    items: List[Any] = []
    skipped = 0
    for pos, segment in enumerate(segments):
        newest = pos == len(segments) - 1
        try:
            raw = segment.read_bytes()
        except OSError:
            continue  # pruned between listing and read
        lines = [ln for ln in raw.split(b"\n") if ln.strip()]
        # Drop a trailing seal: always present on sealed segments, and
        # possible on the active file if a crash struck between the
        # seal append and the rename.
        if lines and _parse_seal(lines[-1]) is not None:
            lines = lines[:-1]
        for i, line in enumerate(lines):
            if _parse_seal(line) is not None:
                continue  # stray seal mid-file: not data, not an error
            try:
                items.append(decode(line))
            except _DECODE_ERRORS:
                if newest:
                    skipped += len(lines) - i
                    break
                skipped += 1
    return items, skipped


# ----------------------------------------------------------------------
# the rotating writer
# ----------------------------------------------------------------------
class RotatingJsonlWriter:
    """Append-only JSONL writer with size-bounded rotation + shedding.

    Parameters
    ----------
    path:
        The active stream file (``trace.jsonl`` etc.); sealed segments
        land beside it as ``<stem>.NNNNNN<suffix>``.
    budget:
        Rotation budget; ``None`` disables rotation entirely (the
        stream grows without bound, the pre-PR-10 behaviour).
    governor:
        Optional :class:`~repro.resources.governor.ResourceGovernor`
        notified of rotations and shed transitions (counters + events).
    stream:
        Short label for metrics/warnings; defaults to the file stem.
    ring:
        Lines retained in memory while shedding (newest win).
    retry_every:
        While shedding, the disk is re-probed every this many appends.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        budget: Optional[StreamBudget] = DEFAULT_STREAM_BUDGET,
        governor: Optional[Any] = None,
        stream: Optional[str] = None,
        ring: int = 1024,
        retry_every: int = 64,
    ) -> None:
        if retry_every < 1:
            raise ValueError("retry_every must be >= 1")
        self.path = Path(path)
        self.budget = budget
        self.governor = governor
        self.stream = stream if stream is not None else self.path.stem
        self.ring: "deque[str]" = deque(maxlen=int(ring))
        self.retry_every = int(retry_every)
        self.rotations = 0
        self.shed_lines = 0
        self.shedding = False
        self._fh = None
        self._bytes = 0
        self._lines = 0
        self._crc = 0
        self._since_retry = 0
        self._adopted = False

    # ------------------------------------------------------------------
    def _adopt_existing(self) -> None:
        """Resume byte/line/CRC accounting over a pre-existing file."""
        self._adopted = True
        self._bytes = self._lines = self._crc = 0
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        self._bytes = len(raw)
        self._crc = zlib.crc32(raw) & 0xFFFFFFFF
        self._lines = sum(1 for ln in raw.split(b"\n") if ln.strip())

    def _handle(self):
        if self._fh is None:
            if not self._adopted:
                self._adopt_existing()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def _close_handle(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - close-on-error path
                pass
            self._fh = None

    # ------------------------------------------------------------------
    def write_line(self, text: str) -> None:
        """Append one JSON line (newline added if missing)."""
        if not text.endswith("\n"):
            text += "\n"
        if self.shedding:
            self._since_retry += 1
            if self._since_retry < self.retry_every:
                self._shed(text)
                return
            self._since_retry = 0  # probe the disk again below
        data = text.encode("utf-8")
        try:
            check_io_faults(self.path, stream=self.stream)
            fh = self._handle()
            fh.write(data)
            fh.flush()
        except OSError as exc:
            self._enter_shed(exc, text)
            return
        if self.shedding:
            self.shedding = False
            self._adopt_existing()  # re-sync accounting after the gap
            self._bytes += len(data)
            self._lines += 1
            logger.info(
                "stream %r recovered from shed mode (%d lines lost)",
                self.stream, self.shed_lines,
            )
            if self.governor is not None:
                self.governor.note_stream_recovered(self.stream)
        else:
            self._bytes += len(data)
            self._lines += 1
            self._crc = zlib.crc32(data, self._crc) & 0xFFFFFFFF
        if (
            self.budget is not None
            and self._bytes >= self.budget.max_segment_bytes
        ):
            self._rotate()

    def write_lines(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.write_line(text)

    # ------------------------------------------------------------------
    def _shed(self, text: str) -> None:
        self.ring.append(text)
        self.shed_lines += 1
        if self.governor is not None:
            self.governor.count_shed_line(self.stream)

    def _enter_shed(self, exc: OSError, text: Optional[str]) -> None:
        self._close_handle()
        first = not self.shedding
        self.shedding = True
        self._since_retry = 0
        if text is not None:
            self._shed(text)
        if not first:
            return
        key = f"shed:{self.stream}"
        if key not in _WARNED:
            _WARNED.add(key)
            logger.warning(
                "stream %r cannot reach disk (%s); shedding to an "
                "in-memory ring of %d lines (counted under "
                "telemetry.shed)",
                self.stream, exc, self.ring.maxlen,
            )
        if self.governor is not None:
            self.governor.note_stream_shed(self.stream, self.path, exc)

    # ------------------------------------------------------------------
    def _rotate(self) -> None:
        """Seal the active file and start a fresh one."""
        try:
            fh = self._handle()
            seal = json.dumps(
                {
                    SEAL_KEY: {
                        "crc": f"{self._crc:08x}",
                        "lines": self._lines,
                    }
                },
                sort_keys=True,
            )
            fh.write((seal + "\n").encode("utf-8"))
            fh.flush()
            self._close_handle()
            existing = sealed_segments(self.path)
            last = _segment_index(self.path, existing[-1]) if existing else 0
            target = _segment_path(self.path, (last or 0) + 1)
            os.replace(self.path, target)
        except OSError as exc:
            self._enter_shed(exc, None)
            return
        self._bytes = self._lines = self._crc = 0
        self.rotations += 1
        freed = self._prune()
        if self.stream not in _WARNED:
            _WARNED.add(self.stream)
            logger.warning(
                "stream %r reached its %d-byte segment budget and "
                "rotated (keeping the newest %s sealed segments; older "
                "history is pruned)",
                self.stream,
                self.budget.max_segment_bytes,
                self.budget.keep_segments,
            )
        if self.governor is not None:
            self.governor.note_rotation(self.stream, target, freed)

    def _prune(self) -> int:
        """Drop sealed segments beyond ``keep_segments``; bytes freed."""
        if self.budget is None:
            return 0
        freed = 0
        segments = sealed_segments(self.path)
        for old in segments[: max(0, len(segments) - self.budget.keep_segments)]:
            try:
                freed += old.stat().st_size
                old.unlink()
            except OSError:  # pragma: no cover - racing cleanup
                pass
        return freed

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._close_handle()
