"""Injectable I/O fault sites shared by every durable-artifact writer.

Three sites model the ways a filesystem says "no more":

* ``io.enospc`` — the disk is full (``ENOSPC``);
* ``io.edquot`` — a quota was exhausted (``EDQUOT``);
* ``io.eio``    — the device itself failed the write (``EIO``).

:func:`check_io_faults` is called at the top of every writer in the
stack — :func:`repro.io.atomic_savez`, :func:`repro.io.atomic_write_text`,
the job-journal append, the metrics exporter's swap, and the rotating
trace/event sinks — and raises a real :class:`OSError` carrying the
matching ``errno``, so the degraded-mode ladders are exercised by the
exact exception a real exhausted disk produces.  Callers therefore need
no fault-specific handling: one ``except OSError`` covers the drill and
the real thing.
"""

from __future__ import annotations

import errno
import os
from typing import Dict

from repro.resilience.faults import fire_fault, register_fault_site

__all__ = ["IO_FAULT_SITES", "check_io_faults"]

#: ``site name -> errno`` for the injectable I/O failure modes.
IO_FAULT_SITES: Dict[str, int] = {
    "io.enospc": errno.ENOSPC,
    "io.edquot": errno.EDQUOT,
    "io.eio": errno.EIO,
}

register_fault_site(
    "io.enospc",
    "resources",
    "every durable writer (atomic_savez/atomic_write_text, journal "
    "append, exporter swap, trace/event sinks) — raises OSError(ENOSPC)",
)
register_fault_site(
    "io.edquot",
    "resources",
    "every durable writer — raises OSError(EDQUOT) (disk quota "
    "exhausted)",
)
register_fault_site(
    "io.eio",
    "resources",
    "every durable writer — raises OSError(EIO) (device-level write "
    "failure)",
)


def check_io_faults(path, **context) -> None:
    """Fire the ``io.*`` fault sites for one write to ``path``.

    Raises :class:`OSError` with the site's errno when an armed spec
    matches; a no-op (one global load per site) otherwise.  ``context``
    is forwarded to the injector so campaign specs can target a
    specific write (e.g. ``at={"seq": 7}`` for one journal append).
    """
    for site, err in IO_FAULT_SITES.items():
        if fire_fault(site, **context) is not None:
            raise OSError(err, os.strerror(err), str(path))
