"""Stokesian dynamics (SD) substrate.

Everything the paper's application layer needs, built from scratch:

* :mod:`repro.stokesian.particles` — periodic simulation box,
  polydisperse spheres, and the E. coli cytoplasm radii distribution of
  Table IV;
* :mod:`repro.stokesian.packing` — random configurations at prescribed
  volume occupancy (10–50% in the paper) via random placement plus
  overlap relaxation;
* :mod:`repro.stokesian.neighbors` — periodic cell-list neighbor search;
* :mod:`repro.stokesian.lubrication` — two-sphere lubrication
  resistance functions for unequal spheres (squeeze and shear modes,
  after Jeffrey & Onishi 1984 / Kim & Karrila 1991);
* :mod:`repro.stokesian.resistance` — assembly of the sparse resistance
  matrix ``R = muF*I + Rlub`` in BCRS form (the Torres & Gilbert
  far-field-effective-viscosity approximation the paper uses);
* :mod:`repro.stokesian.mobility` — Oseen and Rotne–Prager–Yamakawa
  mobility tensors (the dense ``M_infinity`` component, used by the
  Brownian dynamics baseline);
* :mod:`repro.stokesian.chebyshev` — shifted Chebyshev approximation of
  the matrix square root (Fixman 1986);
* :mod:`repro.stokesian.brownian` — Brownian forces ``f^B = S(R) z``
  with the proper covariance;
* :mod:`repro.stokesian.integrators` — explicit midpoint (the paper's
  second-order scheme), its overlap-avoiding variant, and first-order
  Euler for drift comparisons;
* :mod:`repro.stokesian.dynamics` — the Algorithm 1 ("original")
  simulation driver;
* :mod:`repro.stokesian.brownian_dynamics` — the Brownian dynamics
  (Ermak–McCammon) baseline method SD is contrasted against.
"""

from repro.stokesian.particles import (
    ParticleSystem,
    ECOLI_RADII_ANGSTROM,
    ECOLI_RADII_FRACTIONS,
    sample_ecoli_radii,
)
from repro.stokesian.packing import random_configuration, relax_overlaps
from repro.stokesian.neighbors import neighbor_pairs, CellList
from repro.stokesian.lubrication import (
    squeeze_resistance,
    shear_resistance,
    pair_resistance_block,
)
from repro.stokesian.resistance import (
    build_resistance_matrix,
    far_field_viscosity,
)
from repro.stokesian.mobility import rpy_mobility_matrix, oseen_mobility_matrix
from repro.stokesian.ewald import ewald_rpy_mobility_matrix, EwaldParameters
from repro.stokesian.chebyshev import ChebyshevSqrt, lanczos_spectrum_bounds
from repro.stokesian.brownian import BrownianForceGenerator
from repro.stokesian.dynamics import SDParameters, StokesianDynamics
from repro.stokesian.brownian_dynamics import BrownianDynamics
from repro.stokesian.cholesky_dynamics import CholeskyStokesianDynamics
from repro.stokesian.bonded import HarmonicBonds, chain_bonds
from repro.stokesian.analysis import (
    TrajectoryAnalyzer,
    contact_pairs,
    radial_distribution,
)

__all__ = [
    "ParticleSystem",
    "ECOLI_RADII_ANGSTROM",
    "ECOLI_RADII_FRACTIONS",
    "sample_ecoli_radii",
    "random_configuration",
    "relax_overlaps",
    "neighbor_pairs",
    "CellList",
    "squeeze_resistance",
    "shear_resistance",
    "pair_resistance_block",
    "build_resistance_matrix",
    "far_field_viscosity",
    "rpy_mobility_matrix",
    "oseen_mobility_matrix",
    "ewald_rpy_mobility_matrix",
    "EwaldParameters",
    "ChebyshevSqrt",
    "lanczos_spectrum_bounds",
    "BrownianForceGenerator",
    "SDParameters",
    "StokesianDynamics",
    "BrownianDynamics",
    "CholeskyStokesianDynamics",
    "HarmonicBonds",
    "chain_bonds",
    "TrajectoryAnalyzer",
    "contact_pairs",
    "radial_distribution",
]
