"""Time-integration helpers.

The SD governing equation ``R(r) dr/dt = -f^B`` is first order but
needs a *second-order* integrator because ``R`` depends on the
configuration: a first-order scheme makes a systematic drift error
``~ div R^{-1}`` (Fixman 1978; Grassia et al. 1995).  The paper uses
the explicit midpoint method, "with a modification ... which helps
avoid particle overlaps at the intermediate configuration" (Banchio &
Brady 2003).

This module provides the pure, stateless pieces:

* :func:`overlap_safe_scale` — the largest step fraction that keeps
  every neighbor pair's surfaces separated (the overlap-avoiding
  modification);
* :func:`euler_update` / :func:`midpoint_update` — position updates
  given already-computed velocities (useful for testing the schemes in
  isolation; the full drivers live in :mod:`repro.stokesian.dynamics`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.stokesian.neighbors import NeighborList
from repro.stokesian.particles import ParticleSystem

__all__ = ["overlap_safe_scale", "apply_displacement", "euler_update", "midpoint_update"]


def overlap_safe_scale(
    system: ParticleSystem,
    delta: np.ndarray,
    neighbor_list: NeighborList,
    *,
    safety: float = 0.9,
) -> float:
    """Largest ``s <= 1`` such that moving by ``s * delta`` keeps every
    listed pair's gap positive.

    Conservative bound: pair ``(i, j)`` with surface gap ``g`` can close
    by at most ``|delta_i - delta_j|``, so ``s <= safety * g / |delta_i
    - delta_j|``.  Returns 1.0 when every pair is safe at full step.
    """
    if not 0 < safety <= 1:
        raise ValueError("safety must be in (0, 1]")
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape == (system.dof,):
        delta = delta.reshape(system.n, 3)
    if neighbor_list.n_pairs == 0:
        return 1.0
    i, j = neighbor_list.i, neighbor_list.j
    gaps = neighbor_list.dist - (system.radii[i] + system.radii[j])
    rel = np.linalg.norm(delta[j] - delta[i], axis=1)
    moving = rel > 1e-300
    if not np.any(moving):
        return 1.0
    limit = safety * gaps[moving] / rel[moving]
    return float(min(1.0, max(1e-6, limit.min())))


def apply_displacement(
    system: ParticleSystem,
    delta: np.ndarray,
    neighbor_list: NeighborList,
    *,
    safety: float = 0.9,
) -> Tuple[ParticleSystem, float]:
    """Move by ``delta`` scaled so no neighbor pair overlaps.

    Returns the new system and the scale actually applied (1.0 when the
    full step was safe) — the Banchio–Brady-style overlap avoidance.
    """
    scale = overlap_safe_scale(system, delta, neighbor_list, safety=safety)
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape == (system.dof,):
        delta = delta.reshape(system.n, 3)
    return system.displaced(scale * delta), scale


def euler_update(system: ParticleSystem, velocity: np.ndarray, dt: float) -> ParticleSystem:
    """First-order update ``r += dt * u`` (no overlap protection).

    Provided for the drift-error comparison against the midpoint scheme;
    production steps go through :func:`apply_displacement`.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    v = np.asarray(velocity, dtype=np.float64)
    if v.shape == (system.dof,):
        v = v.reshape(system.n, 3)
    return system.displaced(dt * v)


def midpoint_update(
    system: ParticleSystem,
    velocity_half: np.ndarray,
    dt: float,
) -> ParticleSystem:
    """Explicit-midpoint final update ``r_{k+1} = r_k + dt * u_{k+1/2}``."""
    return euler_update(system, velocity_half, dt)
