"""Brownian dynamics (Ermak-McCammon 1978): the baseline method.

The paper contrasts SD with "the well-known Brownian dynamics (BD)
method which cannot accurately model short-range forces, and has thus
been used only to study relatively dilute systems".  BD propagates
positions directly through the *mobility* (here RPY, dense):

    dr = M f^P dt + sqrt(2 kT dt) B z,     B B^T = M,

with no lubrication resistance — cheap, but wrong for nearly-touching
particles (nothing stops them interpenetrating except the conservative
forces supplied).  This implementation exists as the scientific
baseline and as a cross-check of the mobility tensors; overlap between
particles is reported, not prevented, faithfully to the method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.solvers.chol import CholeskySolver
from repro.stokesian.mobility import rpy_mobility_matrix
from repro.stokesian.particles import ParticleSystem
from repro.util.rng import RngLike, as_rng

__all__ = ["BDParameters", "BrownianDynamics"]


@dataclass(frozen=True)
class BDParameters:
    dt: float = 0.05
    viscosity: float = 1.0
    kT: float = 1.0
    mobility: str = "rpy"
    """``"rpy"`` (minimum-image, fast) or ``"ewald_rpy"`` (true periodic
    Ewald sum — the accurate choice for small boxes)."""

    def __post_init__(self) -> None:
        if self.dt <= 0 or self.viscosity <= 0 or self.kT <= 0:
            raise ValueError("dt, viscosity and kT must be positive")
        if self.mobility not in ("rpy", "ewald_rpy"):
            raise ValueError("mobility must be 'rpy' or 'ewald_rpy'")


class BrownianDynamics:
    """Ermak-McCammon BD with RPY hydrodynamic interactions.

    Parameters
    ----------
    system:
        Initial configuration.
    params:
        Time step and physical constants.
    forces:
        Optional callable ``forces(system) -> (n, 3)`` for the
        deterministic force ``f^P`` (default: force-free, pure
        diffusion).
    rng:
        Noise stream.
    """

    def __init__(
        self,
        system: ParticleSystem,
        params: BDParameters = BDParameters(),
        *,
        forces: Optional[Callable[[ParticleSystem], np.ndarray]] = None,
        rng: RngLike = None,
    ) -> None:
        self.system = system
        self.params = params
        self.forces = forces
        self.rng = as_rng(rng)
        self.step_index = 0
        self._unwrapped = system.positions.copy()
        self._initial = system.positions.copy()

    def _mobility(self, sys_: ParticleSystem) -> np.ndarray:
        if self.params.mobility == "ewald_rpy":
            from repro.stokesian.ewald import ewald_rpy_mobility_matrix

            return ewald_rpy_mobility_matrix(sys_, viscosity=self.params.viscosity)
        return rpy_mobility_matrix(sys_, viscosity=self.params.viscosity)

    def step(self) -> ParticleSystem:
        """Advance one Ermak-McCammon step; returns the new system."""
        p = self.params
        sys_ = self.system
        M = self._mobility(sys_)
        chol = self._factor_mobility(M)
        z = self.rng.standard_normal(sys_.dof)
        delta = np.sqrt(2.0 * p.kT * p.dt) * chol.sample_correlated(z=z)
        if self.forces is not None:
            f = np.asarray(self.forces(sys_), dtype=np.float64).reshape(-1)
            if f.shape != (sys_.dof,):
                raise ValueError("forces must return an (n, 3) array")
            delta = delta + p.dt * (M @ f)
        delta = delta.reshape(sys_.n, 3)
        self._unwrapped = self._unwrapped + delta
        self.system = sys_.displaced(delta)
        self.step_index += 1
        return self.system

    @staticmethod
    def _factor_mobility(M: np.ndarray) -> CholeskySolver:
        """Cholesky of the mobility, regularized if marginally indefinite.

        Minimum-image RPY (no Ewald sum) can have slightly negative
        eigenvalues in crowded periodic systems; a diagonal shift of
        ``1.1 |lambda_min|`` restores definiteness with an O(lambda_min)
        perturbation — negligible against the self-mobilities.
        """
        try:
            return CholeskySolver(M)
        except ValueError:
            lam_min = float(np.linalg.eigvalsh(M).min())
            shift = 1.1 * abs(lam_min) + 1e-14
            return CholeskySolver(M + shift * np.eye(M.shape[0]))

    def run(self, n_steps: int) -> ParticleSystem:
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            self.step()
        return self.system

    # ------------------------------------------------------------------
    def mean_squared_displacement(self) -> float:
        """MSD from the initial configuration (unwrapped coordinates)."""
        d = self._unwrapped - self._initial
        return float(np.mean(np.sum(d * d, axis=1)))

    def diffusion_estimate(self) -> float:
        """Effective diffusion constant ``MSD / (6 t)`` so far."""
        t = self.step_index * self.params.dt
        if t == 0:
            return 0.0
        return self.mean_squared_displacement() / (6.0 * t)

    def overlap_count(self) -> int:
        """Number of overlapping pairs (BD's known failure mode)."""
        sys_ = self.system
        i, j = np.triu_indices(sys_.n, k=1)
        d = sys_.minimum_image(sys_.positions[j] - sys_.positions[i])
        dist = np.linalg.norm(d, axis=1)
        return int(np.sum(dist < sys_.radii[i] + sys_.radii[j]))
