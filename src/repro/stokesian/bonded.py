"""Bonded (deterministic) forces for chain molecules.

Section II: "other forces can be incorporated, such as bonded forces
for simulating long-chain molecules as a bonded chain of particles."
This module supplies the standard harmonic bond field as a force
callback compatible with :class:`~repro.stokesian.dynamics.
StokesianDynamics` and :class:`~repro.core.mrhs.MrhsStokesianDynamics`
(the ``forces=`` argument):

    f_i = -k (|r_ij| - L0) r_hat_ij    summed over bonds at i,

with minimum-image bond vectors so chains work across the periodic
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stokesian.particles import ParticleSystem

__all__ = ["HarmonicBonds", "chain_bonds"]


@dataclass(frozen=True)
class HarmonicBonds:
    """A set of harmonic springs between particle pairs.

    Attributes
    ----------
    i, j:
        ``(nbonds,)`` particle indices (``i != j``).
    rest_length:
        ``(nbonds,)`` equilibrium separations.
    stiffness:
        ``(nbonds,)`` spring constants.
    """

    i: np.ndarray
    j: np.ndarray
    rest_length: np.ndarray
    stiffness: np.ndarray

    def __post_init__(self) -> None:
        i = np.ascontiguousarray(self.i, dtype=np.int64)
        j = np.ascontiguousarray(self.j, dtype=np.int64)
        rest = np.ascontiguousarray(self.rest_length, dtype=np.float64)
        k = np.ascontiguousarray(self.stiffness, dtype=np.float64)
        if not (len(i) == len(j) == len(rest) == len(k)):
            raise ValueError("bond arrays must have equal length")
        if np.any(i == j):
            raise ValueError("bonds must connect distinct particles")
        if np.any(rest < 0) or np.any(k < 0):
            raise ValueError("rest lengths and stiffnesses must be >= 0")
        object.__setattr__(self, "i", i)
        object.__setattr__(self, "j", j)
        object.__setattr__(self, "rest_length", rest)
        object.__setattr__(self, "stiffness", k)

    @property
    def n_bonds(self) -> int:
        return int(len(self.i))

    # ------------------------------------------------------------------
    def __call__(self, system: ParticleSystem) -> np.ndarray:
        """Evaluate the bond forces: ``(n, 3)``, minimum-image."""
        if self.n_bonds == 0:
            return np.zeros((system.n, 3))
        if int(max(self.i.max(), self.j.max())) >= system.n:
            raise ValueError("bond indices exceed system size")
        r = system.minimum_image(
            system.positions[self.j] - system.positions[self.i]
        )
        dist = np.linalg.norm(r, axis=1)
        if np.any(dist <= 0):
            raise ValueError("coincident bonded particles")
        stretch = dist - self.rest_length
        # Force on i pulls toward j when stretched (stretch > 0).
        f_pair = (self.stiffness * stretch / dist)[:, None] * r
        out = np.zeros((system.n, 3))
        np.add.at(out, self.i, f_pair)
        np.add.at(out, self.j, -f_pair)
        return out

    def energy(self, system: ParticleSystem) -> float:
        """Total bond potential energy ``sum k/2 (|r| - L0)^2``."""
        if self.n_bonds == 0:
            return 0.0
        r = system.minimum_image(
            system.positions[self.j] - system.positions[self.i]
        )
        dist = np.linalg.norm(r, axis=1)
        return float(np.sum(0.5 * self.stiffness * (dist - self.rest_length) ** 2))

    def bond_lengths(self, system: ParticleSystem) -> np.ndarray:
        r = system.minimum_image(
            system.positions[self.j] - system.positions[self.i]
        )
        return np.linalg.norm(r, axis=1)


def chain_bonds(
    indices: Sequence[int],
    rest_length: float,
    stiffness: float,
) -> HarmonicBonds:
    """Bonds linking consecutive entries of ``indices`` into a chain."""
    idx = np.asarray(list(indices), dtype=np.int64)
    if len(idx) < 2:
        raise ValueError("a chain needs at least two particles")
    n = len(idx) - 1
    return HarmonicBonds(
        i=idx[:-1],
        j=idx[1:],
        rest_length=np.full(n, float(rest_length)),
        stiffness=np.full(n, float(stiffness)),
    )
