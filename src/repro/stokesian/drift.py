"""Integrator-order validation: the systematic drift of first-order schemes.

Section II.C justifies the midpoint method: "a second-order integrator
must be used because of the configuration dependence of R; a
first-order integrator makes a systematic error corresponding to a mean
drift, div R^{-1} (Fixman 1978; Grassia et al. 1995).  (For the Oseen
and Rotne-Prager-Yamakawa tensors, the gradient with respect to r is
zero, making the second-order method unnecessary.)"

This module measures that drift directly on the smallest system where
it exists — two spheres with a gap-dependent lubrication resistance.

The physics: the correct Fokker-Planck drift for force-free Brownian
motion with configuration-dependent mobility ``M(r) = R^{-1}`` is
``kT div M``.  An Euler step (velocity evaluated at the start point)
produces zero mean displacement — i.e. it *misses* that term, which is
its systematic error; the midpoint step generates it automatically to
O(dt).  Both schemes additionally share a *geometric* positive bias of
the pair separation (the norm is convex in the displacement), so the
clean observable is the **difference** between the two schemes' mean
separation changes:

    drift_difference(dt) = mean_sep_change(midpoint) -
                           mean_sep_change(euler)  ~  kT (div M)_r dt,

which is positive (mobility grows with gap near contact, so ``div M``
points outward) and linear in dt — both properties are unit-tested.

The functions are ensemble-based (means over many noise realizations),
because the drift is invisible in any single trajectory.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.solvers.chol import CholeskySolver
from repro.stokesian.particles import ParticleSystem
from repro.stokesian.resistance import build_resistance_matrix
from repro.util.rng import RngLike, spawn_rngs

__all__ = ["ensemble_drift", "drift_difference", "two_sphere_system"]

Scheme = Literal["euler", "midpoint"]


def two_sphere_system(gap: float, radius: float = 1.0, box: float = 40.0) -> ParticleSystem:
    """Two equal spheres with the given surface gap, centered in a box."""
    if gap <= 0:
        raise ValueError("gap must be positive")
    half = (2 * radius + gap) / 2
    c = box / 2
    return ParticleSystem(
        [[c - half, c, c], [c + half, c, c]],
        [radius, radius],
        [box] * 3,
    )


def _step_separation(
    system: ParticleSystem,
    dt: float,
    kT: float,
    z: np.ndarray,
    scheme: Scheme,
    cutoff_gap: float,
) -> float:
    """One exact-Brownian step; returns the new pair separation."""
    scale = np.sqrt(2.0 * kT / dt)

    def velocity(sys_: ParticleSystem) -> np.ndarray:
        R = build_resistance_matrix(sys_, cutoff_gap=cutoff_gap)
        chol = CholeskySolver(R)
        f_b = scale * chol.sample_correlated(z=z)
        return chol.solve(-f_b)

    u0 = velocity(system)
    if scheme == "euler":
        moved = system.displaced(dt * u0)
    elif scheme == "midpoint":
        half = system.displaced(0.5 * dt * u0)
        u_half = velocity(half)
        moved = system.displaced(dt * u_half)
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return float(np.linalg.norm(moved.pair_vector(0, 1)))


def ensemble_drift(
    *,
    gap: float = 0.1,
    dt: float = 0.05,
    kT: float = 1.0,
    samples: int = 400,
    scheme: Scheme = "euler",
    rng: RngLike = 0,
    cutoff_gap: float = 1.0,
) -> float:
    """Mean one-step change of the pair separation over a noise ensemble.

    A positive value means the scheme pushes the pair apart on average.
    Both schemes carry the geometric norm-convexity bias; only their
    *difference* isolates the Fixman drift (see module docstring and
    :func:`drift_difference`).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    system = two_sphere_system(gap)
    r0 = float(np.linalg.norm(system.pair_vector(0, 1)))
    streams = spawn_rngs(rng, samples)
    total = 0.0
    for gen in streams:
        z = gen.standard_normal(system.dof)
        total += _step_separation(system, dt, kT, z, scheme, cutoff_gap) - r0
    return total / samples


def drift_difference(
    *,
    gap: float = 0.1,
    dt: float = 0.05,
    kT: float = 1.0,
    samples: int = 400,
    rng: RngLike = 0,
    cutoff_gap: float = 1.0,
) -> float:
    """``mean_sep_change(midpoint) - mean_sep_change(euler)``.

    The Fixman drift the paper's second-order integrator exists to
    capture: positive (outward, toward higher mobility) and O(dt).
    Uses *common random numbers* — the same noise ensemble drives both
    schemes — so the geometric bias cancels exactly sample-by-sample.
    """
    common = dict(
        gap=gap, dt=dt, kT=kT, samples=samples, rng=rng, cutoff_gap=cutoff_gap
    )
    return ensemble_drift(scheme="midpoint", **common) - ensemble_drift(
        scheme="euler", **common
    )
