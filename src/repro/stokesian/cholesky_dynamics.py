"""The paper's small-problem SD path: one Cholesky factorization per step.

Section II.C: "Many SD implementations use a Cholesky factorization of
R for computing f^B and for solving the systems in steps 3 and 5.  An
important advantage of this is because the Cholesky factor computed for
step 2 can be reused for step 3.  A further optimization which we have
used ... is to solve the system in step 5 using the same Cholesky
factor combined with a simple iterative method, such as 'iterative
refinement'.  Combined with an initial guess which is the solution from
step 3, only a very small number of iterations are needed for
convergence.  Thus only one Cholesky factorization, rather than two, is
needed per time step."

:class:`CholeskyStokesianDynamics` implements exactly that pipeline:

    1. R_k = muF*I + Rlub(r_k);  factor once: R_k = L L^T
    2. f^B = scale * L z                       (exact Brownian force)
    3. u_k = L^-T L^-1 (-f^B)                  (direct solve, free reuse)
    4. midpoint configuration
    5. u_{k+1/2} from *iterative refinement* against R_{k+1/2} using the
       frozen factor of R_k and initial guess u_k
    6. final update

It is the reference implementation the iterative drivers are validated
against on small systems, and demonstrates why the approach dies at
scale (one dense factorization per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.solvers.chol import CholeskySolver
from repro.solvers.refine import iterative_refinement
from repro.stokesian.dynamics import SDParameters
from repro.stokesian.integrators import apply_displacement
from repro.stokesian.neighbors import neighbor_pairs
from repro.stokesian.particles import ParticleSystem
from repro.stokesian.resistance import build_resistance_matrix
from repro.util.rng import RngLike, as_rng
from repro.util.timer import Stopwatch, TimingRecord

__all__ = ["CholeskyStepRecord", "CholeskyStokesianDynamics"]


@dataclass(frozen=True)
class CholeskyStepRecord:
    """Outcome of one direct-path time step."""

    step_index: int
    refinement_iterations: int
    """Iterations of the step-5 refinement (paper: 'a very small
    number')."""
    refinement_converged: bool
    timings: TimingRecord
    factorizations: int
    """Cholesky factorizations performed this step (always 1: the
    paper's headline optimization)."""


class CholeskyStokesianDynamics:
    """Algorithm 1 with the direct (Cholesky) solver pipeline."""

    def __init__(
        self,
        system: ParticleSystem,
        params: SDParameters = SDParameters(),
        *,
        rng: RngLike = None,
    ) -> None:
        self.system = system
        self.params = params
        self.rng = as_rng(rng)
        self.step_index = 0
        self.history: List[CholeskyStepRecord] = []

    # ------------------------------------------------------------------
    def build_matrix(self, system: Optional[ParticleSystem] = None):
        sys_ = system if system is not None else self.system
        return build_resistance_matrix(
            sys_,
            viscosity=self.params.viscosity,
            cutoff_gap=self.params.cutoff_gap,
        )

    def step(self, *, z: Optional[np.ndarray] = None) -> CholeskyStepRecord:
        """Advance one time step; exactly one Cholesky factorization."""
        p = self.params
        sw = Stopwatch()
        if z is None:
            z = self.rng.standard_normal(self.system.dof)

        with sw.phase("Construct R"):
            R_k = self.build_matrix()
        with sw.phase("Factor"):
            chol = CholeskySolver(R_k)
        with sw.phase("Brownian (exact)"):
            f_b = p.force_scale * chol.sample_correlated(z=z)
        with sw.phase("1st solve (direct)"):
            u_k = chol.solve(-f_b)

        gap = p.cutoff_gap
        if gap is None:
            gap = float(np.mean(self.system.radii))
        nl = neighbor_pairs(self.system, max_gap=gap)
        half_system, _ = apply_displacement(
            self.system, 0.5 * p.dt * u_k, nl, safety=p.overlap_safety
        )
        with sw.phase("Construct R half"):
            R_half = self.build_matrix(half_system)
        with sw.phase("2nd solve (refinement)"):
            # The frozen factor of R_k approximates R_{k+1/2}^{-1}; the
            # first solve's solution is the initial guess.
            refined = iterative_refinement(
                R_half,
                -f_b,
                chol.solve,
                x0=u_k,
                tol=p.tol,
            )

        new_system, _ = apply_displacement(
            self.system, p.dt * refined.x, nl, safety=p.overlap_safety
        )
        self.system = new_system
        record = CholeskyStepRecord(
            step_index=self.step_index,
            refinement_iterations=refined.iterations,
            refinement_converged=refined.converged,
            timings=sw.record(),
            factorizations=1,
        )
        self.step_index += 1
        self.history.append(record)
        return record

    def run(self, n_steps: int) -> List[CholeskyStepRecord]:
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        return [self.step() for _ in range(n_steps)]
