"""Two-sphere lubrication resistance functions (unequal radii).

Near-field hydrodynamics between two spheres of radii ``a`` and ``b``
whose surfaces are separated by a gap ``h`` is singular: the squeeze
(motion along the line of centers) resistance diverges as ``1/h`` and
the shear (tangential) resistance as ``log(1/h)``.  The standard
matched-asymptotic expansions (Jeffrey & Onishi 1984; Kim & Karrila
1991, Ch. 11), with ``beta = b/a`` and the dimensionless gap
``xi = 2 h / (a + b)``, give the resistance scalars normalized by
``6 pi mu a``:

    squeeze:  X = g1/xi + g2 * ln(1/xi) + g3 * xi * ln(1/xi)
    shear:    Y = g4 * ln(1/xi)         + g5 * xi * ln(1/xi)

    g1 = 2 beta^2 / (1+beta)^3
    g2 = beta (1 + 7 beta + beta^2) / (5 (1+beta)^3)
    g3 = (1 + 18 beta - 29 beta^2 + 18 beta^3 + beta^4) / (42 (1+beta)^3)
    g4 = 4 beta (2 + beta + 2 beta^2) / (15 (1+beta)^3)
    g5 = 2 (16 - 45 beta + 58 beta^2 - 45 beta^3 + 16 beta^4) / (375 (1+beta)^3)

(The leading squeeze term reproduces the classical result
``F = 6 pi mu (ab/(a+b))^2 / h`` for the relative normal motion of two
spheres.)

These scalars are assembled into the ``3 x 3`` pair tensor

    A = X * d d^T + Y * (I - d d^T)

with ``d`` the unit center line.  Two choices keep ``Rlub`` positive
semidefinite, as the paper requires ("we further adjust Rlub to project
out the collective motion of pairs of particles", after Cichocki et
al.):

1. the pair contributes ``[[+A, -A], [-A, +A]]`` — it resists only
   *relative* motion, so any rigid translation of the pair is in its
   null space;
2. the scalars are shifted to vanish continuously at the interaction
   cutoff and clamped at zero, so ``A`` itself is PSD.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squeeze_resistance",
    "shear_resistance",
    "pair_resistance_block",
    "pair_resistance_blocks",
]

#: Gaps below ``MIN_GAP_FRACTION * (a+b)/2`` are regularized to that value
#: (near-touching pairs would otherwise make the matrix arbitrarily
#: ill-conditioned; the paper controls this with its time step choice).
MIN_GAP_FRACTION = 1e-4


def _g_coefficients(beta: np.ndarray) -> tuple[np.ndarray, ...]:
    b = np.asarray(beta, dtype=np.float64)
    denom = (1.0 + b) ** 3
    g1 = 2.0 * b**2 / denom
    g2 = b * (1.0 + 7.0 * b + b**2) / (5.0 * denom)
    g3 = (1.0 + 18.0 * b - 29.0 * b**2 + 18.0 * b**3 + b**4) / (42.0 * denom)
    g4 = 4.0 * b * (2.0 + b + 2.0 * b**2) / (15.0 * denom)
    g5 = (
        2.0
        * (16.0 - 45.0 * b + 58.0 * b**2 - 45.0 * b**3 + 16.0 * b**4)
        / (375.0 * denom)
    )
    return g1, g2, g3, g4, g5


def _xi(a, b, gap):
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    gap = np.asarray(gap, dtype=np.float64)
    mean_r = 0.5 * (a + b)
    gap = np.maximum(gap, MIN_GAP_FRACTION * mean_r)
    return gap / mean_r  # = 2h/(a+b)


def squeeze_resistance(a, b, gap, viscosity: float = 1.0) -> np.ndarray:
    """Squeeze-mode resistance scalar ``X`` (force per unit relative
    normal velocity), dimensional.

    Vectorized over ``a``, ``b``, ``gap``.
    """
    xi = _xi(a, b, gap)
    beta = np.asarray(b, dtype=np.float64) / np.asarray(a, dtype=np.float64)
    g1, g2, g3, _, _ = _g_coefficients(beta)
    log_term = np.log(1.0 / xi)
    x = g1 / xi + g2 * log_term + g3 * xi * log_term
    return 6.0 * np.pi * viscosity * np.asarray(a, dtype=np.float64) * x


def shear_resistance(a, b, gap, viscosity: float = 1.0) -> np.ndarray:
    """Shear-mode resistance scalar ``Y`` (force per unit relative
    tangential velocity), dimensional."""
    xi = _xi(a, b, gap)
    beta = np.asarray(b, dtype=np.float64) / np.asarray(a, dtype=np.float64)
    _, _, _, g4, g5 = _g_coefficients(beta)
    log_term = np.log(1.0 / xi)
    y = g4 * log_term + g5 * xi * log_term
    return 6.0 * np.pi * viscosity * np.asarray(a, dtype=np.float64) * y


def pair_resistance_block(
    a: float,
    b: float,
    r_vec: np.ndarray,
    *,
    viscosity: float = 1.0,
    cutoff_gap: float,
) -> np.ndarray:
    """The PSD ``3 x 3`` lubrication tensor for one pair.

    ``r_vec`` is the center-to-center vector; ``cutoff_gap`` the surface
    gap at which the interaction is shifted to zero.  Returns the zero
    block for pairs beyond the cutoff.
    """
    blocks = pair_resistance_blocks(
        np.array([a]),
        np.array([b]),
        np.asarray(r_vec, dtype=np.float64)[None, :],
        viscosity=viscosity,
        cutoff_gap=cutoff_gap,
    )
    return blocks[0]


def pair_resistance_blocks(
    a: np.ndarray,
    b: np.ndarray,
    r_vec: np.ndarray,
    *,
    viscosity: float = 1.0,
    cutoff_gap: float,
) -> np.ndarray:
    """Vectorized :func:`pair_resistance_block` for ``npairs`` pairs.

    Parameters
    ----------
    a, b:
        ``(npairs,)`` radii of the two partners.
    r_vec:
        ``(npairs, 3)`` center-to-center vectors.
    cutoff_gap:
        Surface-gap cutoff.  Scalars are evaluated as
        ``max(0, f(gap) - f(cutoff_gap))`` so they decay continuously to
        zero and stay non-negative (keeping each block PSD).
    """
    if cutoff_gap <= 0:
        raise ValueError("cutoff_gap must be positive")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    r_vec = np.asarray(r_vec, dtype=np.float64)
    if r_vec.shape != (len(a), 3) or len(a) != len(b):
        raise ValueError("a, b must be (npairs,) and r_vec (npairs, 3)")
    dist = np.linalg.norm(r_vec, axis=1)
    if np.any(dist <= 0):
        raise ValueError("coincident particle centers")
    gap = dist - (a + b)

    x = squeeze_resistance(a, b, gap, viscosity) - squeeze_resistance(
        a, b, np.full_like(gap, cutoff_gap), viscosity
    )
    y = shear_resistance(a, b, gap, viscosity) - shear_resistance(
        a, b, np.full_like(gap, cutoff_gap), viscosity
    )
    x = np.maximum(x, 0.0)
    y = np.maximum(y, 0.0)
    beyond = gap >= cutoff_gap
    x[beyond] = 0.0
    y[beyond] = 0.0

    d = r_vec / dist[:, None]
    outer = np.einsum("ki,kj->kij", d, d)
    eye = np.broadcast_to(np.eye(3), outer.shape)
    return x[:, None, None] * outer + y[:, None, None] * (eye - outer)
