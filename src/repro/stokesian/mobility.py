"""Far-field mobility tensors: Oseen and Rotne-Prager-Yamakawa (RPY).

These are the blocks of the dense long-range component ``M_infinity``
of the full Stokesian-dynamics resistance formulation
(``R = (M_infinity)^{-1} + Rlub``) and the mobility used by the
Brownian-dynamics baseline (Ermak & McCammon 1978).  The paper's sparse
approximation replaces ``(M_infinity)^{-1}`` with ``muF * I``, but the
tensors are implemented in full here because (a) the BD comparator
needs them and (b) they complete the SD substrate.

For unequal radii ``a_i, a_j`` at center distance ``r`` (Rotne & Prager
1969; Yamakawa 1970; polydisperse form of Wajnryb et al.):

    non-overlapping (r >= a_i + a_j):
        M_ij = 1/(8 pi mu r) [ (1 + (a_i^2+a_j^2)/(3 r^2)) I
                             + (1 - (a_i^2+a_j^2)/r^2) rr^T/r^2 ]
    self:
        M_ii = 1/(6 pi mu a_i) I

Overlapping pairs use the RPY overlap correction evaluated with the
mean radius ``abar = (a_i+a_j)/2`` (exact for equal spheres; a
PD-preserving approximation otherwise):

        M_ij = 1/(6 pi mu abar) [ (1 - 9r/(32 abar)) I
                                + (3/(32 abar)) rr^T/r ]

Periodic boundaries are handled with the minimum-image convention (the
paper's production path would use particle-mesh Ewald, which it
explicitly leaves to future work).
"""

from __future__ import annotations

import numpy as np

from repro.stokesian.particles import ParticleSystem

__all__ = ["rpy_mobility_matrix", "oseen_mobility_matrix"]


def _pairwise_geometry(system: ParticleSystem):
    n = system.n
    i, j = np.triu_indices(n, k=1)
    r = system.minimum_image(system.positions[j] - system.positions[i])
    dist = np.linalg.norm(r, axis=1)
    return i, j, r, dist


def _fill_symmetric(M: np.ndarray, i, j, blocks):
    for k in range(len(i)):
        bi, bj = 3 * i[k], 3 * j[k]
        M[bi : bi + 3, bj : bj + 3] = blocks[k]
        M[bj : bj + 3, bi : bi + 3] = blocks[k].T


def rpy_mobility_matrix(system: ParticleSystem, viscosity: float = 1.0) -> np.ndarray:
    """Dense ``3n x 3n`` RPY mobility matrix (positive definite).

    Intended for the small systems of the BD baseline and for validating
    the sparse resistance approximation; cost is O(n^2).
    """
    if viscosity <= 0:
        raise ValueError("viscosity must be positive")
    n = system.n
    M = np.zeros((3 * n, 3 * n))
    a = system.radii
    for p in range(n):
        M[3 * p : 3 * p + 3, 3 * p : 3 * p + 3] = np.eye(3) / (
            6.0 * np.pi * viscosity * a[p]
        )
    if n == 1:
        return M
    i, j, r, dist = _pairwise_geometry(system)
    d = r / dist[:, None]
    outer = np.einsum("ki,kj->kij", d, d)
    eye = np.broadcast_to(np.eye(3), outer.shape)
    asq = a[i] ** 2 + a[j] ** 2
    touching = a[i] + a[j]

    blocks = np.empty_like(outer)
    far = dist >= touching
    if np.any(far):
        rf, of, df = dist[far], outer[far], asq[far]
        pref = 1.0 / (8.0 * np.pi * viscosity * rf)
        blocks[far] = pref[:, None, None] * (
            (1.0 + df / (3.0 * rf**2))[:, None, None] * eye[far]
            + (1.0 - df / rf**2)[:, None, None] * of
        )
    near = ~far
    if np.any(near):
        rn, on = dist[near], outer[near]
        abar = 0.5 * touching[near]
        pref = 1.0 / (6.0 * np.pi * viscosity * abar)
        blocks[near] = pref[:, None, None] * (
            (1.0 - 9.0 * rn / (32.0 * abar))[:, None, None] * eye[near]
            + (3.0 * rn / (32.0 * abar))[:, None, None] * on
        )
    _fill_symmetric(M, i, j, blocks)
    return M


def oseen_mobility_matrix(system: ParticleSystem, viscosity: float = 1.0) -> np.ndarray:
    """Dense ``3n x 3n`` Oseen-tensor mobility matrix.

    The point-force (Stokeslet) approximation:
    ``M_ij = 1/(8 pi mu r) (I + rr^T/r^2)``.  Unlike RPY it is not
    guaranteed positive definite at close separations — the classical
    reason RPY superseded it for Brownian simulation.
    """
    if viscosity <= 0:
        raise ValueError("viscosity must be positive")
    n = system.n
    M = np.zeros((3 * n, 3 * n))
    a = system.radii
    for p in range(n):
        M[3 * p : 3 * p + 3, 3 * p : 3 * p + 3] = np.eye(3) / (
            6.0 * np.pi * viscosity * a[p]
        )
    if n == 1:
        return M
    i, j, r, dist = _pairwise_geometry(system)
    d = r / dist[:, None]
    outer = np.einsum("ki,kj->kij", d, d)
    eye = np.broadcast_to(np.eye(3), outer.shape)
    pref = 1.0 / (8.0 * np.pi * viscosity * dist)
    blocks = pref[:, None, None] * (eye + outer)
    _fill_symmetric(M, i, j, blocks)
    return M
