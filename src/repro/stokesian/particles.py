"""Particle systems: periodic box, polydisperse spheres, Table IV radii.

The paper's test system is "a collection of 300,000 spheres of various
radii in a simulation box with periodic boundary conditions.  The
spheres represent proteins in a distribution of sizes that matches the
distribution of sizes of proteins in the cytoplasm of E. coli"
(Table IV, from Ando & Skolnick 2010).  :data:`ECOLI_RADII_ANGSTROM`
and :data:`ECOLI_RADII_FRACTIONS` reproduce that table exactly;
:func:`sample_ecoli_radii` draws from it.

Lengths are in arbitrary units (the paper's are Angstroms); the library
is unit-agnostic as long as radii, box, viscosity and kT are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_finite

__all__ = [
    "ECOLI_RADII_ANGSTROM",
    "ECOLI_RADII_FRACTIONS",
    "sample_ecoli_radii",
    "ParticleSystem",
]

# Table IV of the paper: distribution of particle radii (Angstroms) for
# the E. coli cytoplasm model.
ECOLI_RADII_ANGSTROM = np.array(
    [
        115.24, 85.23, 66.49, 49.16, 45.43, 43.06, 42.48, 39.16,
        36.76, 35.94, 31.71, 27.77, 25.75, 24.01, 21.42,
    ]
)
ECOLI_RADII_FRACTIONS = np.array(
    [
        2.43, 3.16, 6.55, 0.97, 0.49, 3.64, 2.91, 2.67,
        8.01, 8.01, 10.92, 25.97, 8.25, 9.95, 6.07,
    ]
) / 100.0


def sample_ecoli_radii(n: int, rng: RngLike = None) -> np.ndarray:
    """Draw ``n`` radii from the Table IV E. coli protein distribution."""
    if n < 1:
        raise ValueError("n must be >= 1")
    gen = as_rng(rng)
    probs = ECOLI_RADII_FRACTIONS / ECOLI_RADII_FRACTIONS.sum()
    return gen.choice(ECOLI_RADII_ANGSTROM, size=n, p=probs)


@dataclass(frozen=True, eq=False)
class ParticleSystem:
    """``n`` spheres in a periodic rectangular box.

    Attributes
    ----------
    positions:
        ``(n, 3)`` array; always stored wrapped into ``[0, box)``.
    radii:
        ``(n,)`` array of sphere radii.
    box:
        ``(3,)`` box edge lengths.
    """

    positions: np.ndarray
    radii: np.ndarray
    box: np.ndarray

    def __post_init__(self) -> None:
        positions = np.array(self.positions, dtype=np.float64)
        radii = np.array(self.radii, dtype=np.float64)
        box = np.array(self.box, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError("positions must have shape (n, 3)")
        if radii.shape != (positions.shape[0],):
            raise ValueError("radii must have shape (n,)")
        if box.shape != (3,) or np.any(box <= 0):
            raise ValueError("box must be 3 positive edge lengths")
        if np.any(radii <= 0):
            raise ValueError("all radii must be positive")
        # Geometry must be finite; positions are deliberately left
        # permissive — bare drivers propagate a NaN state loudly rather
        # than masking it (the health layer is what flags it).
        check_finite("radii", radii)
        check_finite("box", box)
        if np.any(2 * radii.max() > box):
            raise ValueError("box must be larger than the largest sphere diameter")
        positions = np.mod(positions, box)
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "radii", radii)
        object.__setattr__(self, "box", box)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of particles."""
        return int(self.positions.shape[0])

    @property
    def dof(self) -> int:
        """Translational degrees of freedom (``3 n``)."""
        return 3 * self.n

    @property
    def volume(self) -> float:
        return float(np.prod(self.box))

    @property
    def volume_fraction(self) -> float:
        """Fraction of the box volume occupied by spheres."""
        return float((4.0 / 3.0) * np.pi * np.sum(self.radii**3) / self.volume)

    # ------------------------------------------------------------------
    def minimum_image(self, displacement: np.ndarray) -> np.ndarray:
        """Wrap displacement vectors to their minimum periodic image."""
        d = np.asarray(displacement, dtype=np.float64)
        return d - self.box * np.round(d / self.box)

    def pair_vector(self, i: int, j: int) -> np.ndarray:
        """Minimum-image vector from particle ``i`` to particle ``j``."""
        return self.minimum_image(self.positions[j] - self.positions[i])

    def surface_gap(self, i: int, j: int) -> float:
        """Surface-to-surface separation of particles ``i`` and ``j``
        (negative when overlapping)."""
        dist = float(np.linalg.norm(self.pair_vector(i, j)))
        return dist - float(self.radii[i] + self.radii[j])

    def displaced(self, delta: np.ndarray) -> "ParticleSystem":
        """Return a new system with positions moved by ``delta``.

        ``delta`` may be ``(n, 3)`` or flat ``(3n,)`` (solver layout).
        Positions are re-wrapped into the box.
        """
        delta = np.asarray(delta, dtype=np.float64)
        if delta.shape == (self.dof,):
            delta = delta.reshape(self.n, 3)
        if delta.shape != (self.n, 3):
            raise ValueError(f"delta must have shape ({self.n}, 3) or ({self.dof},)")
        return ParticleSystem(
            positions=self.positions + delta, radii=self.radii, box=self.box
        )

    def with_positions(self, positions: np.ndarray) -> "ParticleSystem":
        return ParticleSystem(positions=positions, radii=self.radii, box=self.box)

    def max_overlap(self, pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None) -> float:
        """Deepest pair overlap (0 when none).

        ``pairs`` may supply candidate index arrays; without it every
        pair is checked (small systems only).
        """
        if pairs is None:
            i, j = np.triu_indices(self.n, k=1)
        else:
            i, j = pairs
        if len(i) == 0:
            return 0.0
        d = self.minimum_image(self.positions[j] - self.positions[i])
        dist = np.linalg.norm(d, axis=1)
        overlap = (self.radii[i] + self.radii[j]) - dist
        return float(max(0.0, overlap.max()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParticleSystem(n={self.n}, phi={self.volume_fraction:.3f}, "
            f"box={self.box.tolist()})"
        )
