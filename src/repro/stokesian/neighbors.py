"""Periodic neighbor search with cell lists.

The lubrication matrix couples only particle pairs whose surface gap is
below a cutoff, so assembly needs all pairs with center distance under
``radius_i + radius_j + max_gap``.  :class:`CellList` bins particles
into a 3-D grid of cells at least one cutoff wide and scans the 27
neighboring cells (the standard method; the paper constructs the same
neighbor lists and even reuses the binning for its coordinate-based
matrix partitioning).

For boxes too small to hold 3 cells per side the implementation falls
back to an all-pairs minimum-image scan, which is exact at any size.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.stokesian.particles import ParticleSystem

__all__ = ["CellList", "neighbor_pairs", "NeighborList"]


@dataclass(frozen=True)
class NeighborList:
    """Pairs ``(i, j)`` with ``i < j``, their minimum-image vectors and
    center distances."""

    i: np.ndarray
    j: np.ndarray
    r_vec: np.ndarray
    """``(npairs, 3)`` minimum-image vector from i to j."""
    dist: np.ndarray

    @property
    def n_pairs(self) -> int:
        return int(len(self.i))


class CellList:
    """A 3-D periodic cell grid over a particle system."""

    def __init__(self, system: ParticleSystem, cutoff: float) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.system = system
        self.cutoff = float(cutoff)
        # Cells must be at least `cutoff` wide so neighbors are within
        # the adjacent 27 cells.
        counts = np.maximum(1, np.floor(system.box / cutoff).astype(int))
        self.n_cells = counts
        self.use_cells = bool(np.all(counts >= 3))
        if self.use_cells:
            frac = system.positions / system.box
            cell_of = np.minimum(
                (frac * counts).astype(np.int64), counts - 1
            )
            self.cell_index = (
                cell_of[:, 0] * counts[1] + cell_of[:, 1]
            ) * counts[2] + cell_of[:, 2]
            order = np.argsort(self.cell_index, kind="stable")
            self.order = order
            self.sorted_cells = self.cell_index[order]

    def _cell_members(self) -> dict[int, np.ndarray]:
        members: dict[int, np.ndarray] = {}
        boundaries = np.flatnonzero(np.diff(self.sorted_cells)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(self.sorted_cells)]])
        for s, e in zip(starts, ends):
            members[int(self.sorted_cells[s])] = self.order[s:e]
        return members

    def pairs(self) -> NeighborList:
        """All pairs within ``cutoff`` (center distance), ``i < j``."""
        sys_ = self.system
        if not self.use_cells:
            return _all_pairs(sys_, self.cutoff)
        nx, ny, nz = (int(c) for c in self.n_cells)
        members = self._cell_members()
        i_out: list[np.ndarray] = []
        j_out: list[np.ndarray] = []
        offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        for cell_id, own in members.items():
            cx, rem = divmod(cell_id, ny * nz)
            cy, cz = divmod(rem, nz)
            for dx, dy, dz in offsets:
                ox, oy, oz = (cx + dx) % nx, (cy + dy) % ny, (cz + dz) % nz
                other_id = (ox * ny + oy) * nz + oz
                other = members.get(other_id)
                if other is None:
                    continue
                if other_id < cell_id:
                    continue  # each unordered cell pair visited once
                if other_id == cell_id:
                    a, b = np.triu_indices(len(own), k=1)
                    ii, jj = own[a], own[b]
                else:
                    ii = np.repeat(own, len(other))
                    jj = np.tile(other, len(own))
                if len(ii):
                    i_out.append(ii)
                    j_out.append(jj)
        if not i_out:
            empty = np.empty(0, dtype=np.int64)
            return NeighborList(empty, empty, np.empty((0, 3)), np.empty(0))
        i_all = np.concatenate(i_out)
        j_all = np.concatenate(j_out)
        # Canonical orientation i < j (cross-cell pairs may come reversed).
        swap = i_all > j_all
        i_all[swap], j_all[swap] = j_all[swap], i_all[swap].copy()
        r = sys_.minimum_image(sys_.positions[j_all] - sys_.positions[i_all])
        dist = np.linalg.norm(r, axis=1)
        keep = dist <= self.cutoff
        return NeighborList(
            i=i_all[keep], j=j_all[keep], r_vec=r[keep], dist=dist[keep]
        )


def _all_pairs(system: ParticleSystem, cutoff: float) -> NeighborList:
    i, j = np.triu_indices(system.n, k=1)
    r = system.minimum_image(system.positions[j] - system.positions[i])
    dist = np.linalg.norm(r, axis=1)
    keep = dist <= cutoff
    return NeighborList(i=i[keep], j=j[keep], r_vec=r[keep], dist=dist[keep])


def neighbor_pairs(
    system: ParticleSystem, *, max_gap: float | None = None, cutoff: float | None = None
) -> NeighborList:
    """Find interacting pairs of a particle system.

    Exactly one of ``max_gap`` (surface-to-surface) or ``cutoff``
    (center-to-center) must be given.  With ``max_gap``, the search uses
    a conservative center cutoff of ``2*max_radius + max_gap`` and then
    filters pairs by their individual surface gaps — so unequal radii
    are handled exactly.
    """
    if (max_gap is None) == (cutoff is None):
        raise ValueError("specify exactly one of max_gap or cutoff")
    if cutoff is not None:
        return CellList(system, cutoff).pairs()
    if max_gap < 0:
        raise ValueError("max_gap must be non-negative")
    center_cutoff = 2.0 * float(system.radii.max()) + float(max_gap)
    nl = CellList(system, center_cutoff).pairs()
    gaps = nl.dist - (system.radii[nl.i] + system.radii[nl.j])
    keep = gaps <= max_gap
    return NeighborList(
        i=nl.i[keep], j=nl.j[keep], r_vec=nl.r_vec[keep], dist=nl.dist[keep]
    )
