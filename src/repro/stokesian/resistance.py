"""Assembly of the sparse resistance matrix ``R = muF*I + Rlub``.

The paper avoids the dense far-field component ``(M_infinity)^{-1}`` by
using the sparse approximation proposed by Torres & Gilbert (1996),

    R = muF * I + Rlub,

"applicable when the particle interactions are dominated by lubrication
forces", with the far-field effective viscosity ``muF`` "chosen
depending on the volume fraction of the particles", and "a slight
modification of this technique to account for different particle
radii": each particle's diagonal drag scales with its own radius,

    diag block i = muF(phi) * 6 pi mu a_i * I.

``Rlub`` is the sum of pairwise PSD lubrication tensors in the
relative-motion projection (see :mod:`repro.stokesian.lubrication`), so
``R`` is symmetric positive definite by construction — the property CG
and the Chebyshev square root both rely on.

The interaction cutoff ``cutoff_gap`` is the knob the paper turns to
produce matrices with different ``nnzb/nb`` (Table I's mat1/mat2/mat3).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.bcrs import BCRSMatrix
from repro.stokesian.lubrication import pair_resistance_blocks
from repro.stokesian.neighbors import NeighborList, neighbor_pairs
from repro.stokesian.particles import ParticleSystem

__all__ = ["far_field_viscosity", "build_resistance_matrix"]


def far_field_viscosity(volume_fraction: float) -> float:
    """Relative far-field effective viscosity ``muF(phi)``.

    Einstein-Batchelor second-order suspension viscosity,
    ``muF = 1 + 2.5 phi + 5.2 phi^2``: the drag every particle feels
    from the suspension as a whole grows with crowding.  (Torres &
    Gilbert treat ``muF`` as a tunable volume-fraction-dependent
    parameter; any positive monotone choice preserves SPD.)
    """
    if not 0 <= volume_fraction < 1:
        raise ValueError("volume_fraction must be in [0, 1)")
    phi = float(volume_fraction)
    return 1.0 + 2.5 * phi + 5.2 * phi**2


def build_resistance_matrix(
    system: ParticleSystem,
    *,
    viscosity: float = 1.0,
    cutoff_gap: float | None = None,
    neighbor_list: NeighborList | None = None,
    mu_far_field: float | None = None,
) -> BCRSMatrix:
    """Assemble ``R = muF*I + Rlub`` as a 3x3-block BCRS matrix.

    Parameters
    ----------
    system:
        The particle configuration.
    viscosity:
        Solvent viscosity ``mu``.
    cutoff_gap:
        Surface-gap interaction cutoff; defaults to the mean particle
        radius.  Larger cutoffs produce denser matrices (higher
        ``nnzb/nb``) — the Table I knob.
    neighbor_list:
        Pre-computed pair list (must have been built with ``max_gap >=
        cutoff_gap``); recomputed when omitted.
    mu_far_field:
        Override for ``muF`` (defaults to
        :func:`far_field_viscosity` at the system's volume fraction).
    """
    if cutoff_gap is None:
        cutoff_gap = float(np.mean(system.radii))
    if cutoff_gap <= 0:
        raise ValueError("cutoff_gap must be positive")
    if mu_far_field is None:
        mu_far_field = far_field_viscosity(system.volume_fraction)
    if mu_far_field <= 0:
        raise ValueError("mu_far_field must be positive")
    nl = neighbor_list
    if nl is None:
        nl = neighbor_pairs(system, max_gap=cutoff_gap)

    n = system.n
    blocks = pair_resistance_blocks(
        system.radii[nl.i],
        system.radii[nl.j],
        nl.r_vec,
        viscosity=viscosity,
        cutoff_gap=cutoff_gap,
    )
    # Drop pairs whose shifted tensors vanished (gap at/beyond cutoff).
    live = np.flatnonzero(np.abs(blocks).max(axis=(1, 2)) > 0.0)
    i, j, blocks = nl.i[live], nl.j[live], blocks[live]

    # Relative-motion projection: [[+A, -A], [-A, +A]] per pair.
    rows = np.concatenate([i, j, i, j])
    cols = np.concatenate([i, j, j, i])
    vals = np.concatenate([blocks, blocks, -blocks, -blocks])

    # Far-field drag: muF * 6 pi mu a_i per particle (radius-aware).
    drag = mu_far_field * 6.0 * np.pi * viscosity * system.radii
    diag = np.einsum("k,ij->kij", drag, np.eye(3))
    rows = np.concatenate([rows, np.arange(n)])
    cols = np.concatenate([cols, np.arange(n)])
    vals = np.concatenate([vals, diag])

    return BCRSMatrix.from_block_coo(n, n, rows, cols, vals)
