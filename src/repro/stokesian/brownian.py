"""Brownian forces with configuration-dependent covariance.

The fluctuation-dissipation theorem requires the Brownian force to have
covariance proportional to the resistance matrix:

    f^B = scale * L z,   L L^T = R,   z ~ N(0, I),

with ``scale = sqrt(2 kT / dt)`` for the discretized overdamped
dynamics (so the displacement ``dt * R^{-1} f^B`` has covariance
``2 kT dt R^{-1}``, the Einstein relation).

Two construction methods, matching Section II.C:

``"cholesky"``
    Exact: ``L`` from a dense Cholesky factorization.  "Impractical or
    at least very costly for large problems" — the small-system
    reference path.

``"chebyshev"``
    ``S(R) z`` with a shifted Chebyshev approximation of the square
    root (Fixman).  Only needs products with ``R``; with a block ``Z``
    the products are GSPMVs — the kernel this paper is about.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.sparse.bcrs import BCRSMatrix
from repro.stokesian.chebyshev import ChebyshevSqrt, lanczos_spectrum_bounds
from repro.util.rng import RngLike, as_rng

__all__ = ["BrownianForceGenerator"]

Method = Literal["chebyshev", "cholesky"]


class BrownianForceGenerator:
    """Draws Brownian force vectors/blocks for a fixed resistance matrix.

    Build one generator per matrix (the spectrum bounds and Chebyshev
    fit are matrix-specific); call :meth:`generate` for each needed
    force.
    """

    def __init__(
        self,
        R: BCRSMatrix,
        *,
        method: Method = "chebyshev",
        degree: int = 30,
        scale: float = 1.0,
        bounds: Optional[tuple[float, float]] = None,
        rng: RngLike = None,
    ) -> None:
        self.R = R
        self.method: Method = method
        self.scale = float(scale)
        self.n = R.n_rows
        if scale <= 0:
            raise ValueError("scale must be positive")
        if method == "chebyshev":
            if bounds is None:
                bounds = lanczos_spectrum_bounds(R, rng=rng)
            lam_min, lam_max = bounds
            self.approx: Optional[ChebyshevSqrt] = ChebyshevSqrt.fit(
                lam_min, lam_max, degree
            )
            self._chol = None
        elif method == "cholesky":
            from repro.solvers.chol import CholeskySolver

            self.approx = None
            self._chol = CholeskySolver(R)
        else:
            raise ValueError(f"unknown method {method!r}")

    # ------------------------------------------------------------------
    def generate(
        self,
        z: Optional[np.ndarray] = None,
        *,
        m: int = 1,
        rng: RngLike = None,
        matmul=None,
    ) -> np.ndarray:
        """Return ``scale * S(R) z`` (or exact ``scale * L z``).

        ``z`` may be ``(n,)`` or ``(n, m)``; drawn standard-normal when
        omitted.  ``matmul`` is forwarded to the Chebyshev recurrence so
        instrumented drivers can count the GSPMV calls.
        """
        if z is None:
            gen = as_rng(rng)
            z = (
                gen.standard_normal(self.n)
                if m == 1
                else gen.standard_normal((self.n, m))
            )
        z = np.asarray(z, dtype=np.float64)
        if z.shape[0] != self.n:
            raise ValueError(f"z must have {self.n} rows")
        if self.method == "chebyshev":
            return self.scale * self.approx.apply(self.R, z, matmul=matmul)
        return self.scale * self._chol.sample_correlated(z=z)

    # ------------------------------------------------------------------
    def sqrt_accuracy(self) -> float:
        """Max relative error of the square-root approximation.

        0 for the exact Cholesky path; the Chebyshev path's error
        shrinks geometrically with degree.
        """
        if self.method == "cholesky":
            return 0.0
        return self.approx.max_relative_error()

    def empirical_covariance(self, samples: int, rng: RngLike = None) -> np.ndarray:
        """Monte-Carlo estimate of ``E[f f^T] / scale^2`` (tests only).

        Should approach the dense ``R`` as ``samples`` grows.
        """
        gen = as_rng(rng)
        Z = gen.standard_normal((self.n, samples))
        F = self.generate(Z)
        return (F @ F.T) / samples / self.scale**2
