"""Ewald-summed periodic Rotne-Prager-Yamakawa mobility (Beenakker 1986).

The paper's full Stokesian dynamics formulation needs the long-range
mobility ``M_infinity`` under periodic boundary conditions; its
production path would be particle-mesh Ewald, which the paper leaves to
future work ("we will only study the efficiency of GSPMV and leave the
study of PME with multiple vectors for future work").  This module
supplies the exact (non-mesh) Ewald sum that PME approximates — making
the true periodic mobility available to the BD baseline and validation
studies, where :mod:`repro.stokesian.mobility` only offers the
minimum-image approximation.

Derivation (Hasimoto splitting, re-derived and cross-checked below).
The Oseen tensor is a second derivative of ``r``:

    J(r) = (I + rr)/r = (delta Lap - grad grad) r,

so splitting ``r = r erfc(xi r) + r erf(xi r)`` yields a short-ranged
real-space part and a smooth part summed in Fourier space.  The RPY
finite-size correction is the operator ``(1 + (a_i^2 + a_j^2)/6 Lap)``
applied to ``J/(8 pi mu)``; it is carried through *both* parts
analytically (its direct lattice sum, decaying as ``1/r^3``, is only
conditionally convergent, so folding it into the Ewald machinery is not
optional).  With ``E = exp(-xi^2 r^2)/sqrt(pi)`` the real-space tensors
are ``[C1 + (asq/6) D1] I + [C2 + (asq/6) D2] rr`` where

    C1 = erfc(xi r)/r + E (4 xi^3 r^2 - 6 xi)
    C2 = erfc(xi r)/r + E (2 xi - 4 xi^3 r^2)
    D1 = 2 erfc(xi r)/r^3 + E (4 xi/r^2 + 56 xi^3 - 80 xi^5 r^2
                               + 16 xi^7 r^4)
    D2 = -6 erfc(xi r)/r^3 - E (12 xi/r^2 + 8 xi^3 - 64 xi^5 r^2
                                + 16 xi^7 r^4)

the reciprocal-space coefficient is the Stokeslet transform times
Beenakker's screening function times the RPY factor,

    (8 pi / k^2)(I - kk) (1 + k^2/(4 xi^2) + k^4/(8 xi^4))
                         exp(-k^2/(4 xi^2)) (1 - k^2 asq / 6) / V,

with ``k = 0`` excluded (zero net force), and the self term removes the
smooth self-interaction

    (8 xi/sqrt(pi) - 160 a^2 xi^3 / (9 sqrt(pi))) I.

Cross-checks: (a) the xi -> 0 limits of C/D reproduce the free-space
Oseen and RPY tensors; (b) the self term reproduces **Beenakker's
published coefficients** ``1/(6 pi mu a) (1 - 6 xi a/sqrt(pi)
+ 40 a^3 xi^3/(3 sqrt(pi)) + k-sums)`` exactly; (c) the screening
function was verified against a numerically computed Fourier transform
of the smooth part (it is Beenakker's, including the ``k^4/(8 xi^4)``
term); (d) the unit tests verify the decisive property that the
assembled matrix is independent of the splitting parameter xi.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.stokesian.particles import ParticleSystem

__all__ = ["ewald_rpy_mobility_matrix", "EwaldParameters"]


class EwaldParameters:
    """Splitting and cutoff choices for the Ewald sum.

    ``xi`` defaults to ``sqrt(pi)/L`` (balanced real/reciprocal work);
    real-space images are summed to ``r_cut = cut/xi`` and wave vectors
    to ``k_cut = 2 xi cut``; ``cut ~ 3.5`` truncates the Gaussians at
    ~1e-5.
    """

    def __init__(self, box_edge: float, xi: float | None = None, cut: float = 3.5):
        if box_edge <= 0:
            raise ValueError("box_edge must be positive")
        if cut <= 0:
            raise ValueError("cut must be positive")
        self.box_edge = float(box_edge)
        self.xi = float(xi) if xi is not None else float(np.sqrt(np.pi) / box_edge)
        if self.xi <= 0:
            raise ValueError("xi must be positive")
        self.cut = float(cut)

    @property
    def r_cut(self) -> float:
        return self.cut / self.xi

    @property
    def k_cut(self) -> float:
        return 2.0 * self.xi * self.cut

    def real_shells(self) -> np.ndarray:
        """All lattice vectors within one extra shell of ``r_cut``."""
        n_shell = int(np.ceil(self.r_cut / self.box_edge)) + 1
        rng = np.arange(-n_shell, n_shell + 1)
        return (
            np.stack(np.meshgrid(rng, rng, rng, indexing="ij"), axis=-1)
            .reshape(-1, 3)
            .astype(np.float64)
            * self.box_edge
        )

    def wave_vectors(self) -> np.ndarray:
        """Non-zero wave vectors with ``|k| <= k_cut``."""
        k0 = 2.0 * np.pi / self.box_edge
        n_max = int(np.floor(self.k_cut / k0))
        rng = np.arange(-n_max, n_max + 1)
        grid = np.stack(np.meshgrid(rng, rng, rng, indexing="ij"), axis=-1).reshape(
            -1, 3
        )
        grid = grid[np.any(grid != 0, axis=1)]
        k = grid * k0
        return k[np.linalg.norm(k, axis=1) <= self.k_cut]


def _real_space_tensors(r_vec: np.ndarray, xi: float, asq: float) -> np.ndarray:
    """``(1 + asq/6 Lap) J_real`` for each row of ``r_vec`` (non-zero)."""
    r = np.linalg.norm(r_vec, axis=1)
    rhat = r_vec / r[:, None]
    E = np.exp(-(xi**2) * r**2) / np.sqrt(np.pi)
    ec1 = erfc(xi * r) / r
    ec3 = erfc(xi * r) / r**3
    c1 = ec1 + E * (4.0 * xi**3 * r**2 - 6.0 * xi)
    c2 = ec1 + E * (2.0 * xi - 4.0 * xi**3 * r**2)
    d1 = 2.0 * ec3 + E * (
        4.0 * xi / r**2 + 56.0 * xi**3 - 80.0 * xi**5 * r**2 + 16.0 * xi**7 * r**4
    )
    d2 = -6.0 * ec3 - E * (
        12.0 * xi / r**2 + 8.0 * xi**3 - 64.0 * xi**5 * r**2 + 16.0 * xi**7 * r**4
    )
    iso = c1 + (asq / 6.0) * d1
    aniso = c2 + (asq / 6.0) * d2
    eye = np.broadcast_to(np.eye(3), (len(r), 3, 3))
    outer = np.einsum("ki,kj->kij", rhat, rhat)
    return iso[:, None, None] * eye + aniso[:, None, None] * outer


def ewald_rpy_mobility_matrix(
    system: ParticleSystem,
    viscosity: float = 1.0,
    *,
    params: EwaldParameters | None = None,
    xi: float | None = None,
) -> np.ndarray:
    """Dense ``3n x 3n`` periodic RPY mobility via Ewald summation.

    Requires a cubic box and non-overlapping particles (RPY's overlap
    regularization is a free-space construct; SD configurations satisfy
    this anyway).  ``xi``/``params`` control only the work split.
    """
    if viscosity <= 0:
        raise ValueError("viscosity must be positive")
    box = system.box
    if not np.allclose(box, box[0]):
        raise ValueError("Ewald summation requires a cubic box")
    L_edge = float(box[0])
    if params is None:
        params = EwaldParameters(L_edge, xi=xi)
    elif xi is not None:
        raise ValueError("pass either params or xi, not both")
    xi_v = params.xi
    volume = L_edge**3

    n = system.n
    a = system.radii
    pref = 1.0 / (8.0 * np.pi * viscosity)
    M = np.zeros((3 * n, 3 * n))

    shells = params.real_shells()
    shell_r = np.linalg.norm(shells, axis=1)
    kvecs = params.wave_vectors()
    k2 = np.einsum("kI,kI->k", kvecs, kvecs)
    khat = kvecs / np.sqrt(k2)[:, None]
    x = k2 / (4.0 * xi_v**2)
    screening = (
        (8.0 * np.pi / k2)
        * (1.0 + x + 2.0 * x**2)
        * np.exp(-x)
        / volume
    )
    eye_minus_kk = np.broadcast_to(np.eye(3), (len(kvecs), 3, 3)) - np.einsum(
        "ki,kj->kij", khat, khat
    )

    def recip_block(dr: np.ndarray, asq: float) -> np.ndarray:
        phases = np.cos(kvecs @ dr)
        weights = screening * (1.0 - k2 * asq / 6.0) * phases
        return np.einsum("k,kij->ij", weights, eye_minus_kk)

    # --- self terms -----------------------------------------------------
    nonzero_within = (shell_r > 0) & (shell_r <= params.r_cut)
    zero_dr = np.zeros(3)
    for p in range(n):
        asq_self = 2.0 * a[p] ** 2
        real_part = (
            _real_space_tensors(shells[nonzero_within], xi_v, asq_self).sum(axis=0)
            if np.any(nonzero_within)
            else np.zeros((3, 3))
        )
        smooth_self = (
            8.0 * xi_v / np.sqrt(np.pi)
            - 160.0 * a[p] ** 2 * xi_v**3 / (9.0 * np.sqrt(np.pi))
        ) * np.eye(3)
        periodic_self = pref * (
            real_part + recip_block(zero_dr, asq_self) - smooth_self
        )
        M[3 * p : 3 * p + 3, 3 * p : 3 * p + 3] = (
            np.eye(3) / (6.0 * np.pi * viscosity * a[p]) + periodic_self
        )

    # --- pair terms ------------------------------------------------------
    for i in range(n):
        for j in range(i + 1, n):
            dr = system.positions[j] - system.positions[i]
            asq = a[i] ** 2 + a[j] ** 2
            images = dr[None, :] + shells
            img_r = np.linalg.norm(images, axis=1)
            close = img_r <= params.r_cut
            block = np.zeros((3, 3))
            if np.any(close):
                block += _real_space_tensors(images[close], xi_v, asq).sum(axis=0)
            block += recip_block(dr, asq)
            pair = pref * block
            M[3 * i : 3 * i + 3, 3 * j : 3 * j + 3] = pair
            M[3 * j : 3 * j + 3, 3 * i : 3 * i + 3] = pair.T
    return M
