"""Configuration generation at prescribed volume occupancy.

The paper simulates systems at 10%, 30% and 50% volume occupancy ("the
volume occupancy of molecules in the E. coli cytoplasm may be as high
as 40 percent").  Random sequential addition cannot reach 50% for
spheres, so :func:`random_configuration` uses the standard two-phase
recipe:

1. place particles uniformly at random (overlaps allowed);
2. :func:`relax_overlaps` — iteratively push each overlapping pair
   apart along its center line (a deterministic soft-sphere relaxation,
   equivalent to the Lubachevsky–Stillinger spirit at fixed radii)
   until no overlap exceeds the tolerance.

The result is a disordered, non-overlapping configuration at exactly
the requested volume fraction (the box is sized from the radii).
"""

from __future__ import annotations

import numpy as np

from repro.stokesian.neighbors import neighbor_pairs
from repro.stokesian.particles import ParticleSystem, sample_ecoli_radii
from repro.util.rng import RngLike, as_rng

__all__ = ["box_edge_for_fraction", "random_configuration", "relax_overlaps"]


def box_edge_for_fraction(radii: np.ndarray, volume_fraction: float) -> float:
    """Cubic box edge that puts the given spheres at ``volume_fraction``."""
    if not 0 < volume_fraction < 0.74:
        raise ValueError("volume_fraction must be in (0, 0.74)")
    total = (4.0 / 3.0) * np.pi * float(np.sum(np.asarray(radii) ** 3))
    return float((total / volume_fraction) ** (1.0 / 3.0))


def default_clearance(volume_fraction: float) -> float:
    """Typical surface-gap fraction at a given crowding level.

    In a hard-sphere fluid the mean surface separation scales like
    ``a * ((phi_rcp / phi)^(1/3) - 1)`` with ``phi_rcp ~= 0.64`` (random
    close packing).  This default uses the square of that factor (gaps
    of *nearby* pairs shrink faster than the mean), clamped to
    ``[2e-4, 0.1]``.  The resulting resistance-matrix conditioning
    reproduces the paper's behaviour: "systems with high volume
    occupancies tend to have pairs of particles which are extremely
    close to each other, resulting in ill-conditioning".
    """
    if not 0 < volume_fraction < 0.64:
        raise ValueError("volume_fraction must be in (0, 0.64)")
    factor = (0.64 / volume_fraction) ** (1.0 / 3.0) - 1.0
    return float(min(0.1, max(2e-4, 0.08 * factor**2)))


def relax_overlaps(
    system: ParticleSystem,
    *,
    max_sweeps: int = 5000,
    tolerance: float = 1e-7,
    push_factor: float = 1.05,
) -> ParticleSystem:
    """Remove sphere overlaps by pairwise separation pushes.

    Each sweep finds all overlapping pairs and moves both partners apart
    along the center line by half the overlap (times ``push_factor`` for
    strict clearance), accumulating moves before applying them (Jacobi
    style) so the result is order-independent and deterministic.

    Raises ``RuntimeError`` if the target cannot be reached in
    ``max_sweeps`` (volume fraction too high for this simple scheme).
    """
    if push_factor <= 1.0:
        raise ValueError("push_factor must exceed 1")
    sys_ = system
    # Verlet-list reuse: build the pair list with a skin margin and only
    # rebuild once accumulated motion could have created pairs the list
    # misses.  Cuts neighbor searches by an order of magnitude.
    margin = 0.1 * float(np.mean(sys_.radii))
    nl = neighbor_pairs(sys_, max_gap=margin)
    moved = 0.0
    for _ in range(max_sweeps):
        if moved > 0.45 * margin:
            nl = neighbor_pairs(sys_, max_gap=margin)
            moved = 0.0
        if nl.n_pairs == 0:
            return sys_
        r_vec = sys_.minimum_image(
            sys_.positions[nl.j] - sys_.positions[nl.i]
        )
        dist = np.linalg.norm(r_vec, axis=1)
        overlap = (sys_.radii[nl.i] + sys_.radii[nl.j]) - dist
        bad = overlap > tolerance
        if not np.any(bad):
            # Pair-list candidates are clean; verify with a fresh list
            # before declaring victory (motion may have created a pair
            # the stale list does not track).
            nl = neighbor_pairs(sys_, max_gap=margin)
            r_vec = sys_.minimum_image(
                sys_.positions[nl.j] - sys_.positions[nl.i]
            )
            dist = np.linalg.norm(r_vec, axis=1)
            overlap = (sys_.radii[nl.i] + sys_.radii[nl.j]) - dist
            bad = overlap > tolerance
            moved = 0.0
            if not np.any(bad):
                return sys_
        i, j = nl.i[bad], nl.j[bad]
        d_bad, r_bad, ov = dist[bad], r_vec[bad], overlap[bad]
        # Degenerate coincident centers: push along a fixed direction.
        unit = np.where(
            d_bad[:, None] > 1e-12,
            r_bad / np.maximum(d_bad, 1e-12)[:, None],
            [1.0, 0.0, 0.0],
        )
        push = 0.5 * push_factor * ov[:, None] * unit
        delta = np.zeros_like(sys_.positions)
        np.add.at(delta, i, -push)
        np.add.at(delta, j, push)
        sys_ = sys_.displaced(delta)
        moved += float(np.linalg.norm(delta, axis=1).max()) * 2.0
    raise RuntimeError(
        f"could not remove overlaps in {max_sweeps} sweeps "
        f"(volume fraction {system.volume_fraction:.2f} may be too high)"
    )


def random_configuration(
    n: int,
    volume_fraction: float,
    *,
    radii: np.ndarray | None = None,
    rng: RngLike = None,
    max_sweeps: int = 5000,
    clearance: float | None = None,
) -> ParticleSystem:
    """Build a non-overlapping random configuration.

    Parameters
    ----------
    n:
        Number of particles.
    volume_fraction:
        Target occupancy (the paper tests 0.1, 0.3, 0.5).
    radii:
        Per-particle radii; drawn from the Table IV E. coli distribution
        when omitted.
    rng:
        Seed or generator for placement (and radii if drawn).
    max_sweeps:
        Relaxation sweep budget.
    clearance:
        Overlaps are relaxed with radii inflated by ``1 + clearance``,
        so the returned configuration has every surface gap at least
        ``clearance * (a_i + a_j)`` — particles are close (the
        lubrication regime) but not touching.  When ``None`` (default)
        the clearance follows the hard-sphere mean-gap scaling
        :func:`default_clearance`: crowded systems get much smaller
        gaps, which is exactly what makes the paper's 50%-occupancy
        resistance matrices ill-conditioned (~160 CG iterations) while
        10% systems stay easy (~16).
    """
    gen = as_rng(rng)
    if radii is None:
        radii = sample_ecoli_radii(n, gen)
    radii = np.asarray(radii, dtype=np.float64)
    if radii.shape != (n,):
        raise ValueError(f"radii must have shape ({n},)")
    edge = box_edge_for_fraction(radii, volume_fraction)
    box = np.array([edge, edge, edge])
    if np.any(2 * radii.max() > box):
        raise ValueError(
            "volume fraction too low for this n: the box cannot hold the "
            "largest sphere; increase n or volume_fraction"
        )
    # Initial placement biased toward a jittered lattice at high density
    # (pure uniform placement at phi=0.5 relaxes slowly).
    if volume_fraction >= 0.35:
        per_side = int(np.ceil(n ** (1.0 / 3.0)))
        grid = (np.arange(per_side) + 0.5) / per_side * edge
        lattice = np.stack(
            np.meshgrid(grid, grid, grid, indexing="ij"), axis=-1
        ).reshape(-1, 3)[:n]
        jitter = gen.uniform(-0.25, 0.25, size=(n, 3)) * edge / per_side
        positions = lattice + jitter
    else:
        positions = gen.uniform(0.0, edge, size=(n, 3))
    if clearance is None:
        clearance = default_clearance(volume_fraction)
    if not 0 <= clearance < 0.2:
        raise ValueError("clearance must be in [0, 0.2)")
    inflated = ParticleSystem(
        positions=positions, radii=radii * (1.0 + clearance), box=box
    )
    relaxed = relax_overlaps(inflated, max_sweeps=max_sweeps)
    return ParticleSystem(positions=relaxed.positions, radii=radii, box=box)
