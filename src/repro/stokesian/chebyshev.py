"""Shifted Chebyshev approximation of the matrix square root.

Computing Brownian forces needs ``L z`` with ``L L^T = R``.  For large
sparse ``R`` the paper follows Fixman (1986): approximate ``sqrt`` by a
Chebyshev polynomial ``S`` on an interval ``[lam_min, lam_max]``
containing the spectrum, and evaluate ``S(R) z`` with nothing but
matrix-vector products — "particularly advantageous when R is sparse".

Crucially for this paper, the recurrence applies ``R`` to whole
*blocks* of vectors at once, so ``S(R) Z`` for an ``(n, m)`` block
costs ``Cmax`` GSPMVs instead of ``m * Cmax`` SPMVs — this is the
"Cheb vectors" phase of Algorithm 2.

The evaluation uses the standard three-term recurrence on the shifted
operator ``As = (2 A - (lmax+lmin) I) / (lmax - lmin)``:

    T_0(As) Z = Z,  T_1(As) Z = As Z,
    T_{k+1}(As) Z = 2 As T_k(As) Z - T_{k-1}(As) Z,

    S(A) Z = c_0/2 Z + sum_{k>=1} c_k T_k(As) Z.

Coefficients come from Chebyshev-Gauss interpolation of ``sqrt`` on the
interval, whose error decays geometrically in the degree for functions
analytic on the interval (sqrt is, as long as ``lam_min > 0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.util.rng import RngLike, as_rng

__all__ = [
    "chebyshev_coefficients",
    "ChebyshevSqrt",
    "lanczos_spectrum_bounds",
    "gershgorin_bounds",
]


def chebyshev_coefficients(func, lam_min: float, lam_max: float, degree: int) -> np.ndarray:
    """Chebyshev interpolation coefficients of ``func`` on ``[lam_min, lam_max]``.

    Returns ``degree + 1`` coefficients ``c_k`` in the convention
    ``f(x) ~= c_0/2 + sum_{k=1}^{degree} c_k T_k(t)`` with
    ``t = (2x - lmax - lmin)/(lmax - lmin)``.
    """
    if not lam_max > lam_min:
        raise ValueError("lam_max must exceed lam_min")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    K = degree + 1
    k = np.arange(K)
    theta = np.pi * (k + 0.5) / K
    t = np.cos(theta)  # Chebyshev-Gauss nodes
    x = 0.5 * (lam_max - lam_min) * t + 0.5 * (lam_max + lam_min)
    fx = func(x)
    # c_j = (2/K) sum_k f(x_k) cos(j theta_k)
    j = np.arange(K)[:, None]
    return (2.0 / K) * (fx[None, :] * np.cos(j * theta[None, :])).sum(axis=1)


@dataclass(frozen=True)
class ChebyshevSqrt:
    """A fixed-degree Chebyshev approximation of ``sqrt`` on an interval.

    Build once per resistance matrix (spectrum bounds change as the
    configuration evolves), then apply to any number of vectors or
    blocks.
    """

    lam_min: float
    lam_max: float
    degree: int
    coefficients: np.ndarray

    @classmethod
    def fit(cls, lam_min: float, lam_max: float, degree: int = 30) -> "ChebyshevSqrt":
        """Fit ``sqrt`` on ``[lam_min, lam_max]`` (the paper uses degree 30)."""
        if lam_min <= 0:
            raise ValueError("lam_min must be positive (R is SPD)")
        coeffs = chebyshev_coefficients(np.sqrt, lam_min, lam_max, degree)
        return cls(
            lam_min=float(lam_min),
            lam_max=float(lam_max),
            degree=int(degree),
            coefficients=coeffs,
        )

    # ------------------------------------------------------------------
    def evaluate_scalar(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the polynomial on scalars (for error measurement)."""
        x = np.asarray(x, dtype=np.float64)
        t = (2.0 * x - self.lam_max - self.lam_min) / (self.lam_max - self.lam_min)
        c = self.coefficients
        Tkm1 = np.ones_like(t)
        out = 0.5 * c[0] * Tkm1
        if self.degree >= 1:
            Tk = t
            out = out + c[1] * Tk
            for k in range(2, self.degree + 1):
                Tkp1 = 2.0 * t * Tk - Tkm1
                Tkm1, Tk = Tk, Tkp1
                out = out + c[k] * Tk
        return out

    def max_relative_error(self, samples: int = 2001) -> float:
        """Max of ``|S(x) - sqrt(x)| / sqrt(x)`` over the interval."""
        x = np.linspace(self.lam_min, self.lam_max, samples)
        return float(np.max(np.abs(self.evaluate_scalar(x) - np.sqrt(x)) / np.sqrt(x)))

    # ------------------------------------------------------------------
    def apply(self, A, Z: np.ndarray, *, matmul=None) -> np.ndarray:
        """Compute ``S(A) Z`` using only products with ``A``.

        ``Z`` may be a vector or an ``(n, m)`` block; the recurrence
        then runs on whole blocks (one GSPMV per degree).  ``matmul``
        optionally overrides how products are computed (used by the
        instrumented drivers to count kernel invocations).
        """
        Z = np.asarray(Z, dtype=np.float64)
        mul = matmul if matmul is not None else (lambda X: A @ X)
        span = self.lam_max - self.lam_min
        shift = self.lam_max + self.lam_min

        def shifted(X: np.ndarray) -> np.ndarray:
            return (2.0 * mul(X) - shift * X) / span

        c = self.coefficients
        Tkm1 = Z
        out = 0.5 * c[0] * Z
        if self.degree >= 1:
            Tk = shifted(Z)
            out = out + c[1] * Tk
            for k in range(2, self.degree + 1):
                Tkp1 = 2.0 * shifted(Tk) - Tkm1
                Tkm1, Tk = Tk, Tkp1
                out = out + c[k] * Tk
        return out


def gershgorin_bounds(A) -> Tuple[float, float]:
    """Cheap spectrum enclosure of a symmetric BCRS matrix.

    Returns ``(lower, upper)`` from Gershgorin discs on the scalar
    matrix; the lower bound is clamped at a small positive floor since
    the resistance matrix is known SPD.
    """
    from repro.sparse.convert import bcrs_to_scipy

    csr = bcrs_to_scipy(A, "csr")
    diag = csr.diagonal()
    abs_rows = np.abs(csr).sum(axis=1).A1 if hasattr(np.abs(csr).sum(axis=1), "A1") else np.asarray(np.abs(csr).sum(axis=1)).ravel()
    radius = abs_rows - np.abs(diag)
    upper = float(np.max(diag + radius))
    lower = float(np.min(diag - radius))
    floor = 1e-10 * max(upper, 1.0)
    return max(lower, floor), upper


def lanczos_spectrum_bounds(
    A,
    *,
    rng: RngLike = None,
    safety: float = 1.05,
    tol: float = 1e-3,
) -> Tuple[float, float]:
    """Estimate ``(lam_min, lam_max)`` of an SPD operator by Lanczos.

    Uses scipy's implicitly-restarted Lanczos on both ends of the
    spectrum, widened by ``safety`` (the Chebyshev interval must
    *contain* the spectrum).  Falls back to Gershgorin discs if Lanczos
    does not converge.
    """
    import scipy.sparse.linalg as spla

    n = A.shape[0]
    if n <= 2:
        dense = A.to_dense() if hasattr(A, "to_dense") else np.asarray(A)
        w = np.linalg.eigvalsh(dense)
        return float(w[0]) / safety, float(w[-1]) * safety

    gen = as_rng(rng)
    v0 = gen.standard_normal(n)
    op = spla.LinearOperator((n, n), matvec=lambda x: A @ x, dtype=np.float64)
    try:
        lam_max = float(
            spla.eigsh(op, k=1, which="LA", tol=tol, v0=v0, return_eigenvectors=False)[0]
        )
        lam_min = float(
            spla.eigsh(op, k=1, which="SA", tol=tol, v0=v0, return_eigenvectors=False)[0]
        )
        if lam_min <= 0:
            raise ValueError("non-positive Ritz value")
    except Exception:
        lo, hi = gershgorin_bounds(A)
        return lo, hi * safety
    return lam_min / safety, lam_max * safety
