"""The original (single-RHS) Stokesian dynamics driver — Algorithm 1.

One time step:

    1. Construct R_k = muF*I + Rlub(r_k)
    2. Compute f^B_k = S(R_k) z_k                (Cheb single)
    3. Solve R_k u_k = -f^B_k                    (1st solve, no guess)
    4. r_{k+1/2} = r_k + dt/2 * u_k
    5. Solve R_{k+1/2} u_{k+1/2} = -f^B_k        (2nd solve, guess = u_k)
    6. r_{k+1} = r_k + dt * u_{k+1/2}

"In both algorithms, in each timestep, the solution of the first solve
is used as the initial guess for the second solve."  The MRHS driver in
:mod:`repro.core.mrhs` reuses every component defined here and changes
only where the *first* solve's initial guess comes from.

Per-step phase timings use the same labels as the paper's Tables VI and
VII ("Cheb single", "1st solve", "2nd solve"), so the benchmark
harnesses can print the same rows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Literal, Optional

import numpy as np

from repro.health.invariants import HealthContext
from repro.resilience.faults import active_injector, fire_fault
from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.diagnostics import SolveDiagnostics
from repro.solvers.precond import BlockJacobiPreconditioner
from repro.sparse.bcrs import BCRSMatrix
from repro.sparse.kernels import Engine
from repro.stokesian.brownian import BrownianForceGenerator
from repro.stokesian.integrators import apply_displacement
from repro.stokesian.neighbors import NeighborList, neighbor_pairs
from repro.stokesian.particles import ParticleSystem
from repro.stokesian.resistance import build_resistance_matrix
import repro.telemetry as _telemetry
from repro.telemetry import NULL_HUB, TelemetryHub
from repro.util.rng import RngLike, as_rng, rng_from_json, rng_state_to_json
from repro.util.timer import Stopwatch, TimingRecord
from repro.util.validation import check_finite, check_shape

__all__ = ["SDParameters", "StepRecord", "StokesianDynamics"]


@dataclass(frozen=True)
class SDParameters:
    """Simulation parameters shared by the original and MRHS drivers.

    Defaults give a stable, well-conditioned simulation in reduced
    units (``mu = kT = 1``); the paper's physical units (Angstroms,
    ps, 2 ps steps) correspond to a rescaling of dt/viscosity/kT.
    """

    dt: float = 0.05
    viscosity: float = 1.0
    kT: float = 1.0
    cutoff_gap: Optional[float] = None
    """Lubrication interaction cutoff (surface gap); default: mean radius."""
    cheb_degree: int = 30
    """Max Chebyshev order for Brownian forces (30 in the paper)."""
    tol: float = 1e-6
    """CG relative residual tolerance (the paper's 1e-6)."""
    max_iter: int = 10_000
    brownian_method: Literal["chebyshev", "cholesky"] = "chebyshev"
    overlap_safety: float = 0.9
    precondition: bool = False
    """Use a block-Jacobi preconditioner in the solves."""
    engine: Engine = "scipy"
    """Kernel engine for (G)SPMV."""
    bounds_refresh_steps: int = 50
    """Recompute the Chebyshev spectrum bounds every this many steps.
    Between refreshes the cached bounds (widened by
    ``bounds_safety``) are reused — valid because R evolves slowly, and
    essential because a Lanczos bound costs far more than the Cmax
    matrix products of the Chebyshev application itself."""
    bounds_safety: float = 1.25
    """Widening factor applied to cached spectrum bounds."""

    def __post_init__(self) -> None:
        for name in ("dt", "viscosity", "kT"):
            value = getattr(self, name)
            if not np.isfinite(value) or value <= 0:
                raise ValueError(
                    f"{name} must be positive and finite, got {value}"
                )
        if self.cheb_degree < 1:
            raise ValueError("cheb_degree must be >= 1")
        if not 0 < self.tol < 1:
            raise ValueError("tol must be in (0, 1)")
        if self.bounds_refresh_steps < 1:
            raise ValueError("bounds_refresh_steps must be >= 1")
        if self.bounds_safety < 1.0:
            raise ValueError("bounds_safety must be >= 1")

    @property
    def force_scale(self) -> float:
        """``sqrt(2 kT / dt)``: Brownian force magnitude per fluctuation-
        dissipation at this step size."""
        return float(np.sqrt(2.0 * self.kT / self.dt))


@dataclass(frozen=True)
class StepRecord:
    """What happened during one time step (the Tables V-VII raw data)."""

    step_index: int
    iterations_first: int
    iterations_second: int
    converged: bool
    timings: TimingRecord
    midpoint_scale: float
    final_scale: float
    guess_error: Optional[float] = None
    """``||u - u_guess|| / ||u||`` of the first solve, when a guess was
    supplied (the Figure 5 observable)."""
    diagnostics_first: Optional[SolveDiagnostics] = None
    """Convergence record of the first in-step solve."""
    diagnostics_second: Optional[SolveDiagnostics] = None
    """Convergence record of the second (midpoint) solve."""


class StokesianDynamics:
    """Algorithm 1 driver; also the component toolbox for Algorithm 2.

    Parameters
    ----------
    system:
        Initial particle configuration.
    params:
        Numerical parameters.
    rng:
        Seed or generator driving the Brownian noise.
    """

    def __init__(
        self,
        system: ParticleSystem,
        params: SDParameters = SDParameters(),
        *,
        rng: RngLike = None,
        forces: Optional[Callable[[ParticleSystem], np.ndarray]] = None,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        self.system = system
        self.params = params
        self.forces = forces
        self.telemetry = telemetry
        """Telemetry hub recording step/phase spans and step counters;
        :data:`~repro.telemetry.NULL_HUB` (all no-ops) by default.
        Passing a real hub also installs it as the module-level
        ``repro.telemetry.active_hub`` (unless one is already active),
        so the kernel- and solver-level spans land in the same trace."""
        if telemetry.enabled and _telemetry.active_hub is None:
            _telemetry.install(telemetry)
        """Optional deterministic force field ``f^P(system) -> (n, 3)``
        (bonded chains, external fields...).  The paper's experiments
        use ``f^P = 0`` but Section II explicitly allows "other forces
        ... such as bonded forces for simulating long-chain molecules"."""
        self.rng = as_rng(rng)
        self.step_index = 0
        self.history: List[StepRecord] = []
        self.health = None
        """Optional :class:`~repro.health.monitor.HealthMonitor`; when
        attached, every completed step is observed (positions, Brownian
        forces, velocities, realized displacement, spectrum bounds).
        The driver only *reports* — acting on verdicts is the
        acceptance controller's job."""
        self._cached_bounds: Optional[tuple[float, float]] = None
        self._bounds_age = 0
        # Auxiliary stream for Lanczos starting vectors, split off so
        # spectrum estimation never desynchronizes the physical noise
        # sequence between algorithm variants.
        from repro.util.rng import spawn_rngs

        self._aux_rng = spawn_rngs(self.rng, 1)[0]

    # ------------------------------------------------------------------
    # components (shared with the MRHS driver)
    # ------------------------------------------------------------------
    def build_matrix(self, system: Optional[ParticleSystem] = None) -> BCRSMatrix:
        """Step 1: assemble ``R = muF*I + Rlub`` for a configuration."""
        sys_ = system if system is not None else self.system
        return build_resistance_matrix(
            sys_,
            viscosity=self.params.viscosity,
            cutoff_gap=self.params.cutoff_gap,
        )

    def spectrum_bounds(self, R: BCRSMatrix) -> tuple[float, float]:
        """Cached, safety-widened spectrum enclosure of ``R``.

        A fresh Lanczos estimate is taken on the first call and then
        every ``bounds_refresh_steps`` steps; in between, the widened
        cached interval is reused (R drifts slowly with the particles).
        """
        from repro.stokesian.chebyshev import lanczos_spectrum_bounds

        if (
            self._cached_bounds is None
            or self._bounds_age >= self.params.bounds_refresh_steps
        ):
            lo, hi = lanczos_spectrum_bounds(R, rng=self._aux_rng)
            s = self.params.bounds_safety
            self._cached_bounds = (lo / s, hi * s)
            self._bounds_age = 0
        self._bounds_age += 1
        return self._cached_bounds

    def brownian_generator(self, R: BCRSMatrix) -> BrownianForceGenerator:
        """The ``f^B = scale * S(R) z`` generator for a matrix."""
        bounds = (
            self.spectrum_bounds(R)
            if self.params.brownian_method == "chebyshev"
            else None
        )
        return BrownianForceGenerator(
            R,
            method=self.params.brownian_method,
            degree=self.params.cheb_degree,
            scale=self.params.force_scale,
            bounds=bounds,
            rng=self.rng,
        )

    def make_preconditioner(self, R: BCRSMatrix):
        return BlockJacobiPreconditioner(R) if self.params.precondition else None

    def solve(
        self,
        R: BCRSMatrix,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
        preconditioner=None,
    ) -> CGResult:
        """One CG solve with this simulation's tolerance."""
        return conjugate_gradient(
            R,
            rhs,
            x0=x0,
            tol=self.params.tol,
            max_iter=self.params.max_iter,
            preconditioner=preconditioner,
        )

    def draw_noise(self, m: int = 1) -> np.ndarray:
        """Standard-normal ``z`` vectors (``(3n,)`` or ``(3n, m)``).

        Columns are drawn sequentially, so ``draw_noise(m)[:, k]`` is
        bit-identical to the k-th of ``m`` consecutive ``draw_noise()``
        calls — the property that lets the MRHS and original drivers run
        on *identical* noise for step-by-step comparison.
        """
        dof = self.system.dof
        if m == 1:
            return self.rng.standard_normal(dof)
        return np.column_stack(
            [self.rng.standard_normal(dof) for _ in range(m)]
        )

    def external_forces(self, system: Optional[ParticleSystem] = None) -> np.ndarray:
        """Flattened ``f^P`` for a configuration (zeros when no field)."""
        sys_ = system if system is not None else self.system
        if self.forces is None:
            return np.zeros(sys_.dof)
        f = np.asarray(self.forces(sys_), dtype=np.float64)
        if f.shape == (sys_.n, 3):
            f = f.reshape(-1)
        if f.shape != (sys_.dof,):
            raise ValueError("forces must return an (n, 3) or (3n,) array")
        return f

    def neighbor_list(self, system: Optional[ParticleSystem] = None) -> NeighborList:
        sys_ = system if system is not None else self.system
        gap = self.params.cutoff_gap
        if gap is None:
            gap = float(np.mean(sys_.radii))
        return neighbor_pairs(sys_, max_gap=gap)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def step(
        self,
        *,
        z: Optional[np.ndarray] = None,
        u_guess: Optional[np.ndarray] = None,
    ) -> StepRecord:
        """Advance one time step with the original algorithm.

        ``z`` optionally fixes the noise (testing / MRHS replay);
        ``u_guess`` optionally seeds the *first* solve — ``None``
        reproduces the original algorithm exactly, while the MRHS driver
        passes the block-solve guesses here.
        """
        p = self.params
        sw = Stopwatch()
        if z is None:
            z = self.draw_noise()

        tr = self.telemetry.tracer
        step_span = tr.start(
            "step", step=self.step_index, seeded=u_guess is not None
        )
        try:
            with sw.phase("Construct R"), tr.span("Construct R"):
                R_k = self.build_matrix()
                precond = self.make_preconditioner(R_k)
            with sw.phase("Cheb single"), tr.span("Cheb single"):
                gen = self.brownian_generator(R_k)
                f_b = gen.generate(z)
            fault = fire_fault("brownian.forcing", step=self.step_index)
            if fault is not None:
                f_b = fault.mutate(f_b, active_injector().rng)
            with sw.phase("1st solve"), tr.span("1st solve"):
                rhs = -f_b + self.external_forces()
                res1 = self.solve(R_k, rhs, x0=u_guess, preconditioner=precond)
            guess_error = None
            if u_guess is not None:
                norm = float(np.linalg.norm(res1.x))
                if norm > 0:
                    guess_error = float(np.linalg.norm(res1.x - u_guess)) / norm

            nl = self.neighbor_list()
            half_system, mid_scale = apply_displacement(
                self.system, 0.5 * p.dt * res1.x, nl, safety=p.overlap_safety
            )
            with sw.phase("Construct R half"), tr.span("Construct R half"):
                R_half = self.build_matrix(half_system)
                precond_half = self.make_preconditioner(R_half)
            with sw.phase("2nd solve"), tr.span("2nd solve"):
                rhs_half = -f_b + self.external_forces(half_system)
                res2 = self.solve(
                    R_half, rhs_half, x0=res1.x, preconditioner=precond_half
                )

            new_system, final_scale = apply_displacement(
                self.system, p.dt * res2.x, nl, safety=p.overlap_safety
            )
            step_span.set(
                iterations_first=res1.iterations,
                iterations_second=res2.iterations,
                converged=res1.converged and res2.converged,
            )
        except BaseException as exc:
            step_span.set(error=type(exc).__name__)
            raise
        finally:
            step_span.end()
        self.telemetry.metrics.counter("steps.completed").inc()
        self.system = new_system
        if self.health is not None:
            arrays = {
                "brownian-force": f_b,
                "velocity": res2.x,
                "displacement": final_scale * p.dt * res2.x,
            }
            if u_guess is not None:
                arrays["guess"] = u_guess
            self.health.observe_step(
                HealthContext(
                    step_index=self.step_index,
                    system=self.system,
                    dt=p.dt,
                    kT=p.kT,
                    arrays=arrays,
                    bounds=self._cached_bounds,
                    R=R_k,
                    final_scale=final_scale,
                )
            )
        record = StepRecord(
            step_index=self.step_index,
            iterations_first=res1.iterations,
            iterations_second=res2.iterations,
            converged=res1.converged and res2.converged,
            timings=sw.record(),
            midpoint_scale=mid_scale,
            final_scale=final_scale,
            guess_error=guess_error,
            diagnostics_first=res1.diagnostics,
            diagnostics_second=res2.diagnostics,
        )
        self.step_index += 1
        self.history.append(record)
        return record

    def run(self, n_steps: int) -> List[StepRecord]:
        """Advance ``n_steps`` steps; returns their records."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        return [self.step() for _ in range(n_steps)]

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Full serializable driver state (see ``repro.resilience``).

        Everything that influences the future trajectory is captured:
        configuration, both RNG bit-generator states, the cached
        spectrum bounds with their refresh age, and the step counter.
        ``history`` is kept as compact per-step summaries (timings and
        solver diagnostics are telemetry, not trajectory state).
        """
        lo, hi = self._cached_bounds or (None, None)
        return {
            "kind": "sd",
            "step_index": self.step_index,
            "positions": self.system.positions.copy(),
            "radii": self.system.radii.copy(),
            "box": self.system.box.copy(),
            "rng_state": rng_state_to_json(self.rng),
            "aux_rng_state": rng_state_to_json(self._aux_rng),
            "bounds_lo": lo,
            "bounds_hi": hi,
            "bounds_age": self._bounds_age,
            "params": asdict(self.params),
            "history": records_to_state(self.history),
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`get_state` in place (bit-exact trajectory).

        Arrays are shape- and finiteness-validated *before* any live
        state is overwritten: a corrupted checkpoint fails loudly here,
        at resume, instead of poisoning the trajectory ten steps later.
        """
        if state.get("kind") != "sd":
            raise ValueError(f"not a StokesianDynamics state: {state.get('kind')!r}")
        positions = check_shape(
            "checkpoint positions", state["positions"], (None, 3)
        )
        radii = check_shape("checkpoint radii", state["radii"], (positions.shape[0],))
        box = check_shape("checkpoint box", state["box"], (3,))
        for name, arr in (
            ("checkpoint positions", positions),
            ("checkpoint radii", radii),
            ("checkpoint box", box),
        ):
            check_finite(name, arr)
        self.params = SDParameters(**state["params"])
        self.system = ParticleSystem(positions=positions, radii=radii, box=box)
        self.rng = rng_from_json(state["rng_state"])
        self._aux_rng = rng_from_json(state["aux_rng_state"])
        self.step_index = int(state["step_index"])
        lo, hi = state.get("bounds_lo"), state.get("bounds_hi")
        self._cached_bounds = None if lo is None else (float(lo), float(hi))
        self._bounds_age = int(state["bounds_age"])
        self.history = records_from_state(state["history"])

    @classmethod
    def from_state(
        cls,
        state: Dict[str, Any],
        *,
        forces: Optional[Callable[[ParticleSystem], np.ndarray]] = None,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> "StokesianDynamics":
        """Reconstruct a driver from a checkpointed state.

        ``forces`` (a callable) cannot be serialized; resuming a run
        that used one must pass the same callable again.  Likewise
        ``telemetry``: pass the resumed run's hub here (its counters
        are restored separately from the checkpoint's telemetry state).
        """
        system = ParticleSystem(
            positions=state["positions"], radii=state["radii"], box=state["box"]
        )
        driver = cls(
            system, SDParameters(**state["params"]),
            forces=forces, telemetry=telemetry,
        )
        driver.set_state(state)
        return driver


# ----------------------------------------------------------------------
# StepRecord summaries (checkpoint payloads)
# ----------------------------------------------------------------------
def records_to_state(records: List[StepRecord]) -> Dict[str, np.ndarray]:
    """Compress step records to flat arrays for checkpointing.

    Wall-clock timings and solver diagnostics are dropped: they are
    observability data, not trajectory state, and a resumed run gets
    fresh ones.
    """
    return {
        "step_index": np.array([r.step_index for r in records], dtype=np.int64),
        "iterations_first": np.array(
            [r.iterations_first for r in records], dtype=np.int64
        ),
        "iterations_second": np.array(
            [r.iterations_second for r in records], dtype=np.int64
        ),
        "converged": np.array([r.converged for r in records], dtype=bool),
        "midpoint_scale": np.array(
            [r.midpoint_scale for r in records], dtype=np.float64
        ),
        "final_scale": np.array([r.final_scale for r in records], dtype=np.float64),
        "guess_error": np.array(
            [np.nan if r.guess_error is None else r.guess_error for r in records],
            dtype=np.float64,
        ),
    }


def records_from_state(state: Dict[str, np.ndarray]) -> List[StepRecord]:
    """Rebuild summary :class:`StepRecord` objects (empty timings)."""
    empty = TimingRecord(phases={}, counts={})
    n = len(state["step_index"])
    return [
        StepRecord(
            step_index=int(state["step_index"][i]),
            iterations_first=int(state["iterations_first"][i]),
            iterations_second=int(state["iterations_second"][i]),
            converged=bool(state["converged"][i]),
            timings=empty,
            midpoint_scale=float(state["midpoint_scale"][i]),
            final_scale=float(state["final_scale"][i]),
            guess_error=(
                None
                if np.isnan(state["guess_error"][i])
                else float(state["guess_error"][i])
            ),
        )
        for i in range(n)
    ]
