"""Structural and dynamical observables.

"Of scientific and engineering interest are the macroscopic properties
of the particle motion, such as average diffusion constants, that arise
from the microscopic motions of the particles." (Section II.A.)  This
module provides the observables an SD user actually extracts from runs:

* :func:`radial_distribution` — the pair correlation function g(r),
  the standard structural fingerprint of a suspension (crowded systems
  show the contact peak that ill-conditions the resistance matrix);
* :class:`TrajectoryAnalyzer` — accumulates unwrapped displacements
  across driver steps and reports MSD and the effective diffusion
  constant, plus the dilute-limit Stokes-Einstein reference to compare
  against (crowding suppresses D below it);
* :func:`contact_pairs` — pairs within a gap threshold (the
  conditioning proxy used across the benches).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.stokesian.neighbors import neighbor_pairs
from repro.stokesian.particles import ParticleSystem

__all__ = ["radial_distribution", "TrajectoryAnalyzer", "contact_pairs"]


def radial_distribution(
    system: ParticleSystem,
    *,
    r_max: Optional[float] = None,
    n_bins: int = 50,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pair correlation function ``g(r)`` of the configuration.

    Returns ``(bin_centers, g)``.  Normalized so an ideal gas gives
    ``g = 1``; ``r_max`` defaults to half the smallest box edge (the
    minimum-image validity limit).
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    box_limit = float(system.box.min()) / 2.0
    if r_max is None:
        r_max = box_limit
    if not 0 < r_max <= box_limit:
        raise ValueError(f"r_max must be in (0, {box_limit}] (minimum image)")
    n = system.n
    if n < 2:
        raise ValueError("g(r) needs at least two particles")
    i, j = np.triu_indices(n, k=1)
    d = np.linalg.norm(
        system.minimum_image(system.positions[j] - system.positions[i]), axis=1
    )
    edges = np.linspace(0.0, r_max, n_bins + 1)
    counts, _ = np.histogram(d, bins=edges)
    centers = 0.5 * (edges[:-1] + edges[1:])
    shell_volumes = (4.0 / 3.0) * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / system.volume
    # Each of the n(n-1)/2 pairs counted once; expected ideal-gas count
    # per shell is (n/2) * density * shell_volume.
    expected = 0.5 * n * density * shell_volumes
    g = np.divide(counts, expected, out=np.zeros_like(expected), where=expected > 0)
    return centers, g


def contact_pairs(system: ParticleSystem, gap_fraction: float = 0.05) -> int:
    """Number of pairs with surface gap below ``gap_fraction * (a_i+a_j)``.

    The near-contact population controls the lubrication stiffness and
    hence the CG iteration counts (Table V's mechanism).
    """
    if gap_fraction <= 0:
        raise ValueError("gap_fraction must be positive")
    max_gap = gap_fraction * 2.0 * float(system.radii.max())
    nl = neighbor_pairs(system, max_gap=max_gap)
    if nl.n_pairs == 0:
        return 0
    gaps = nl.dist - (system.radii[nl.i] + system.radii[nl.j])
    limit = gap_fraction * (system.radii[nl.i] + system.radii[nl.j])
    return int(np.sum(gaps <= limit))


class TrajectoryAnalyzer:
    """Accumulates unwrapped motion across simulation steps.

    Usage::

        analyzer = TrajectoryAnalyzer(driver.system)
        for _ in range(steps):
            driver.step()
            analyzer.record(driver.system)
        D = analyzer.diffusion_estimate(total_time)

    Works with any driver exposing ``.system`` (original, MRHS, direct,
    BD) because it tracks positions, not internals.  Displacements are
    unwrapped through minimum image, so steps must move particles less
    than half a box edge (guaranteed by the overlap-safe integrator).
    """

    def __init__(self, system: ParticleSystem) -> None:
        self._last = system.positions.copy()
        self._box = system.box.copy()
        self._displacement = np.zeros_like(self._last)
        self.steps_recorded = 0

    def record(self, system: ParticleSystem) -> None:
        """Record a new configuration (after one or more steps)."""
        if system.positions.shape != self._last.shape:
            raise ValueError("particle count changed mid-trajectory")
        delta = system.minimum_image(system.positions - self._last)
        self._displacement += delta
        self._last = system.positions.copy()
        self.steps_recorded += 1

    # ------------------------------------------------------------------
    def mean_squared_displacement(self) -> float:
        return float(np.mean(np.sum(self._displacement**2, axis=1)))

    def diffusion_estimate(self, total_time: float) -> float:
        """``MSD / (6 t)`` — the long-time self-diffusion estimator."""
        if total_time <= 0:
            raise ValueError("total_time must be positive")
        return self.mean_squared_displacement() / (6.0 * total_time)

    @staticmethod
    def stokes_einstein(radius: float, kT: float = 1.0, viscosity: float = 1.0) -> float:
        """Dilute-limit reference ``D0 = kT / (6 pi mu a)``."""
        if radius <= 0 or kT <= 0 or viscosity <= 0:
            raise ValueError("radius, kT, viscosity must be positive")
        return kT / (6.0 * np.pi * viscosity * radius)
