"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library's main workflows:

``simulate``
    Run a matched MRHS-vs-original comparison and print the iteration
    and timing summary (the paper's headline experiment, any size).
``roofline``
    Evaluate the GSPMV performance model for a matrix shape on the
    paper's machines (or a host-calibrated one).
``pack``
    Build and save a packed configuration (reusable workload).
``sweep``
    Sweep the number of right-hand sides and report the best m.
``resume``
    Continue a checkpointed ``simulate`` run (bit-exact) from the
    newest loadable checkpoint in a directory, or a specific file.
``health``
    Print the :class:`~repro.health.monitor.HealthReport` embedded in a
    checkpoint — the post-mortem of a dead or degraded run.
``trace``
    Render the span tree and per-phase wall-time totals recorded in a
    telemetry directory (``simulate --telemetry-dir``).
``report``
    Metrics summary plus the measured-vs-model roofline table joining
    recorded GSPMV/SPMV spans against :mod:`repro.perfmodel`.  Runs
    that exercised the distributed fault machinery additionally get a
    failover table (timeouts, retries, repairs, rank recoveries).
``distsim``
    Run a distributed power iteration on the simulated cluster, with
    optional injected channel faults (``--net-faults``) and
    checkpoint-backed rank recovery (``--checkpoint-every``).
``submit``
    Queue a job spec into a service directory's inbox (picked up by
    the next ``serve``).
``serve``
    Drain a service directory through the fault-tolerant
    :class:`~repro.service.manager.JobManager`: admission control,
    priority-with-aging scheduling, quantum preemption, retry with
    backoff, overload shedding — resumable after a kill via the job
    journal.
``jobs``
    Read-only view of a service directory's job journal (state,
    progress, digests) without constructing a manager.  ``--watch``
    re-renders on an interval (as does ``report --watch``).
``top``
    Live view of a telemetry directory: the exporter's newest metrics
    snapshot (queue depths, per-tenant throughput and SLO burn, engine
    trouble) plus the tail of the unified event bus.
``faults``
    ``faults list`` prints the catalogue of registered fault
    injection sites across every layer.

``simulate`` grows a resilient mode: passing ``--checkpoint-every`` /
``--checkpoint-dir`` runs the MRHS driver under the
:class:`~repro.resilience.runner.ResilientRunner` with periodic
checkpoints, so a killed process can be continued with ``resume``.
``--health-checks`` attaches an invariant :class:`HealthMonitor`
(observe only); ``--reject-bad-steps`` additionally lets fatal
verdicts reject steps (retry with dt halved, MRHS chunk quarantine).
Both imply the resilient runner, as does ``--telemetry-dir`` (which
attaches a :class:`~repro.telemetry.TelemetryHub` writing
``trace.jsonl`` + ``metrics.json`` for ``trace`` / ``report``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


__all__ = ["main", "build_parser"]


#: ``--engine`` vocabulary: the auto-selector plus every concrete
#: kernel engine (kept in sync with ``repro.sparse.kernels.ENGINE_NAMES``
#: by a test; not imported here so ``--help`` stays dependency-light).
ENGINE_CHOICES = (
    "auto", "blocked", "tiled", "scipy", "cgen", "numba", "dedup",
)


def _add_watch_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--watch",
        type=float,
        nargs="?",
        const=2.0,
        default=None,
        metavar="SECONDS",
        help="re-render from the live exporter snapshot every SECONDS "
        "(default 2) until interrupted",
    )
    # Bounded refresh count for tests/scripts (watch forever otherwise).
    sub.add_argument(
        "--watch-count", type=int, default=None, help=argparse.SUPPRESS
    )


def _add_engine_argument(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        default=None,
        help="kernel engine for all SPMV/GSPMV products (default: "
        "registry default; 'auto' micro-benchmarks per machine and "
        "caches the choice; unavailable compiled engines demote down "
        "the fallback ladder)",
    )
    sub.add_argument(
        "--verify-kernels",
        type=int,
        nargs="?",
        const=-1,
        default=None,
        metavar="CADENCE",
        help="shadow-check every CADENCE-th kernel product against the "
        "reference engine and quarantine miscomparing engines (no "
        "value: the default cadence; 0 disables)",
    )


def _add_resource_arguments(sub: argparse.ArgumentParser) -> None:
    """Resource-pressure knobs shared by every telemetry-writing
    command (see ``repro.resources``)."""
    sub.add_argument(
        "--stream-budget",
        default=None,
        metavar="SIZE[:KEEP]",
        help="rotation budget for the telemetry JSONL streams "
        "(trace/events/metrics): max active-segment size plus sealed "
        "segments kept, e.g. '4m:8'; '0' disables rotation "
        "(default 16m:4)",
    )
    sub.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="secondary directory (ideally another filesystem) that "
        "checkpoints fail over to when the primary write hits "
        "ENOSPC/EDQUOT even after junior telemetry is evicted",
    )
    sub.add_argument(
        "--mem-watermark-mb",
        type=float,
        default=None,
        metavar="MIB",
        help="warn (and count resources.memory_breaches) when resident "
        "set size crosses this watermark",
    )


def _stream_budget(args):
    """Resolve ``--stream-budget`` to the hub's ``stream_budget``
    argument: the default sentinel when unset, else a parsed
    :class:`~repro.resources.StreamBudget` (or ``None`` for '0')."""
    raw = getattr(args, "stream_budget", None)
    if raw is None:
        return "default"
    from repro.resources import StreamBudget

    return StreamBudget.parse(raw)


def _memory_guard(args):
    raw = getattr(args, "mem_watermark_mb", None)
    if raw is None:
        return None
    from repro.resources import MemoryGuard

    return MemoryGuard(int(raw * (1 << 20)))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MRHS Stokesian dynamics reproduction (IPDPS 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="MRHS vs original comparison")
    sim.add_argument("--n", type=int, default=100, help="particles")
    sim.add_argument("--phi", type=float, default=0.4, help="volume occupancy")
    sim.add_argument("--m", type=int, default=8, help="right-hand sides")
    sim.add_argument("--chunks", type=int, default=1, help="MRHS chunks to run")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--dt", type=float, default=0.05, help="time step (default 0.05)"
    )
    sim.add_argument(
        "--health-checks",
        action="store_true",
        help="attach invariant health monitoring (implies resilient runner)",
    )
    sim.add_argument(
        "--reject-bad-steps",
        action="store_true",
        help="reject steps violating fatal invariants (implies "
        "--health-checks)",
    )
    sim.add_argument(
        "--steps",
        type=int,
        default=None,
        help="total time steps for resilient runs (default chunks*m)",
    )
    sim.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N steps (enables the resilient runner)",
    )
    sim.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint directory (enables the resilient runner)",
    )
    sim.add_argument(
        "--telemetry-dir",
        default=None,
        help="record span trace + metrics into this directory "
        "(enables the resilient runner)",
    )
    sim.add_argument(
        "--out", default=None, help="save the final configuration (.npz)"
    )
    _add_engine_argument(sim)
    _add_resource_arguments(sim)
    # Simulated process kill after a given global step (failure drills
    # and the kill-and-resume tests).
    sim.add_argument("--die-after", type=int, default=None, help=argparse.SUPPRESS)
    # Inject NaN into the Brownian forcing at a given step (health
    # drills / the health-chaos CI job).
    sim.add_argument("--nan-at", type=int, default=None, help=argparse.SUPPRESS)

    res = sub.add_parser("resume", help="continue a checkpointed run")
    res.add_argument(
        "checkpoint", help="checkpoint .npz file or checkpoint directory"
    )
    res.add_argument(
        "--steps",
        type=int,
        required=True,
        help="run until this global step index",
    )
    res.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="keep checkpointing every N steps while resumed",
    )
    res.add_argument(
        "--telemetry-dir",
        default=None,
        help="continue recording telemetry into this directory "
        "(trace appends; counters restore from the checkpoint)",
    )
    res.add_argument(
        "--out", default=None, help="save the final configuration (.npz)"
    )
    _add_engine_argument(res)
    _add_resource_arguments(res)
    res.add_argument("--die-after", type=int, default=None, help=argparse.SUPPRESS)

    roof = sub.add_parser("roofline", help="GSPMV model for a matrix shape")
    roof.add_argument("--nb", type=int, default=300_000, help="block rows")
    roof.add_argument("--bpr", type=float, default=25.0, help="blocks per row")
    roof.add_argument(
        "--machine", choices=["wsm", "snb", "host"], default="wsm"
    )
    roof.add_argument("--m-max", type=int, default=32)

    pack = sub.add_parser("pack", help="build and save a configuration")
    pack.add_argument("--n", type=int, default=300)
    pack.add_argument("--phi", type=float, default=0.3)
    pack.add_argument("--seed", type=int, default=0)
    pack.add_argument("--out", required=True, help="output .npz path")

    sweep = sub.add_parser("sweep", help="sweep m for a system")
    sweep.add_argument("--n", type=int, default=100)
    sweep.add_argument("--phi", type=float, default=0.4)
    sweep.add_argument(
        "--m-values", type=int, nargs="+", default=[2, 4, 8, 16]
    )
    sweep.add_argument("--seed", type=int, default=0)
    _add_engine_argument(sweep)

    health = sub.add_parser(
        "health", help="print the health report inside a checkpoint"
    )
    health.add_argument(
        "checkpoint", help="checkpoint .npz file or checkpoint directory"
    )
    health.add_argument(
        "--events",
        type=int,
        default=10,
        metavar="N",
        help="show the last N non-OK events (default 10)",
    )

    trace = sub.add_parser(
        "trace", help="render the span tree of a telemetry directory"
    )
    trace.add_argument(
        "run", help="telemetry directory (or a trace.jsonl file)"
    )
    trace.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="D",
        help="limit the tree to D levels",
    )

    rep = sub.add_parser(
        "report", help="metrics summary + measured-vs-model roofline"
    )
    rep.add_argument("run", help="telemetry directory")
    _add_watch_arguments(rep)
    rep.add_argument(
        "--machine",
        choices=["wsm", "snb", "host"],
        default="wsm",
        help="machine model to join measurements against (default wsm)",
    )
    rep.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="flag rows deviating more than this fraction (default 0.25)",
    )
    fmt = rep.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true", help="emit a single JSON document"
    )
    fmt.add_argument(
        "--markdown", action="store_true", help="emit a markdown document"
    )

    dist = sub.add_parser(
        "distsim",
        help="distributed power iteration on the simulated cluster",
    )
    dist.add_argument("--nb", type=int, default=24, help="block rows")
    dist.add_argument(
        "--block-size", type=int, default=3, help="block size (default 3)"
    )
    dist.add_argument("--m", type=int, default=4, help="right-hand sides")
    dist.add_argument("--ranks", type=int, default=4, help="simulated ranks")
    dist.add_argument("--steps", type=int, default=10, help="power-iteration steps")
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument(
        "--net-faults",
        default=None,
        metavar="SPEC",
        help="injected channel faults: ';'-separated entries "
        "kind[:key=val,...] with kind in drop/delay/duplicate/corrupt/"
        "crash, e.g. 'drop:src=0,dest=1,seq=2;crash:rank=1,step=5'",
    )
    dist.add_argument(
        "--reliable",
        action="store_true",
        help="force the deadline/retry halo protocol even without faults",
    )
    dist.add_argument(
        "--deadline",
        type=int,
        default=4,
        help="halo receive deadline in scheduler sweeps (default 4)",
    )
    dist.add_argument(
        "--max-retries",
        type=int,
        default=3,
        help="resend rounds before a peer is declared dead (default 3)",
    )
    dist.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write a per-rank shard wave every N steps "
        "(enables rank recovery)",
    )
    dist.add_argument(
        "--checkpoint-dir",
        default=None,
        help="shard directory (enables rank recovery)",
    )
    dist.add_argument(
        "--max-recoveries",
        type=int,
        default=1,
        help="rank-recovery budget (default 1)",
    )
    dist.add_argument(
        "--telemetry-dir",
        default=None,
        help="record span trace + metrics (feeds the report failover table)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant job service over a directory",
    )
    serve.add_argument("dir", help="service directory (journal + checkpoints)")
    serve.add_argument(
        "--jobs",
        default=None,
        metavar="FILE",
        help="JSON file with a list of job specs to submit before draining",
    )
    serve.add_argument(
        "--quantum",
        type=int,
        default=0,
        help="steps per dispatch before preemption (0 = run to completion)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64, help="max pending jobs"
    )
    serve.add_argument(
        "--shed-watermark",
        type=int,
        default=None,
        help="shed lowest-priority pending jobs above this backlog",
    )
    serve.add_argument(
        "--mem-budget-mb",
        type=float,
        default=None,
        help="aggregate memory budget for admitted jobs (MiB)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="job retry budget after worker crashes (default 3)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        help="per-job checkpoint cadence in steps (default 4)",
    )
    serve.add_argument(
        "--max-ticks",
        type=int,
        default=None,
        help="stop the scheduler after this many logical ticks",
    )
    serve.add_argument(
        "--telemetry-dir",
        default=None,
        help="record service metrics (feeds the report jobs section)",
    )
    serve.add_argument(
        "--export-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="metrics exporter cadence for --telemetry-dir (default 1.0)",
    )
    serve.add_argument(
        "--slo-target",
        type=int,
        default=None,
        metavar="TICKS",
        help="per-tenant submit-to-done latency SLO in logical ticks "
        "(default 32)",
    )
    serve.add_argument(
        "--json", action="store_true", help="emit the job table as JSON"
    )
    _add_resource_arguments(serve)
    serve.add_argument(
        "--tenant-quota",
        action="append",
        default=None,
        metavar="TENANT=SPEC",
        help="hard per-tenant quota, e.g. 'acme=jobs=2,mem=256m,disk=64m' "
        "(repeatable; keys: jobs = concurrent running, mem = resident "
        "bytes of live jobs, disk = bytes under the tenant's job dirs)",
    )
    serve.add_argument(
        "--compact-journal-kb",
        type=int,
        default=None,
        metavar="KIB",
        help="snapshot-compact the job journal when it exceeds this "
        "size (default 1024; 0 disables compaction)",
    )

    submit = sub.add_parser(
        "submit", help="queue one job spec for a service directory"
    )
    submit.add_argument("dir", help="service directory")
    submit.add_argument("--name", required=True, help="unique job name")
    submit.add_argument("--n", type=int, default=24, help="particles")
    submit.add_argument(
        "--phi", type=float, default=0.2, help="volume occupancy"
    )
    submit.add_argument("--m", type=int, default=4, help="right-hand sides")
    submit.add_argument("--steps", type=int, default=8, help="time steps")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--dt", type=float, default=0.05)
    submit.add_argument(
        "--priority", type=int, default=0, help="larger runs sooner"
    )
    submit.add_argument(
        "--tenant",
        default="default",
        help="billing/SLO identity the job's latency counts against",
    )
    submit.add_argument(
        "--deadline",
        type=int,
        default=None,
        help="ticks after submission by which the job must be admitted",
    )

    jobs = sub.add_parser(
        "jobs", help="read-only job table from a service journal"
    )
    jobs.add_argument("dir", help="service directory (or journal path)")
    jobs.add_argument(
        "--json", action="store_true", help="emit the job table as JSON"
    )
    _add_watch_arguments(jobs)

    top = sub.add_parser(
        "top",
        help="live view of a telemetry directory (exporter snapshot "
        "+ unified event tail)",
    )
    top.add_argument("run", help="telemetry directory")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default 2)",
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    top.add_argument(
        "--iterations", type=int, default=None, help=argparse.SUPPRESS
    )
    top.add_argument(
        "--events",
        type=int,
        default=8,
        metavar="N",
        help="show the last N bus events (default 8)",
    )

    faults = sub.add_parser(
        "faults", help="inspect the fault-injection machinery"
    )
    faults.add_argument(
        "action", choices=["list"], help="'list' prints every fault site"
    )
    faults.add_argument(
        "--json", action="store_true", help="emit the catalogue as JSON"
    )
    return parser


def _print_run_summary(driver, report, manager, out, monitor=None) -> None:
    import hashlib

    import numpy as np

    sd = driver.sd if hasattr(driver, "sd") else driver
    print(
        f"completed {report.steps_completed} steps "
        f"(global step {sd.step_index}); retries={report.retries}, "
        f"dt_backoffs={report.dt_backoffs}, "
        f"quarantines={report.quarantines}, "
        f"degradations={report.degradations or '[]'}"
    )
    if monitor is not None:
        print(monitor.report.summary())
        if report.rejected_checks:
            print(f"rejected by invariants: {sorted(set(report.rejected_checks))}")
    if manager is not None and manager.latest() is not None:
        print(f"latest checkpoint: {manager.latest()}")
    digest = hashlib.sha256(
        np.ascontiguousarray(sd.system.positions).tobytes()
    ).hexdigest()
    print(f"positions sha256: {digest}")
    if out:
        from repro.io import save_system

        save_system(out, sd.system)
        print(f"saved final configuration to {out}")


def _kill_plan(args):
    from repro.resilience import FaultPlan, FaultSpec

    specs = []
    if args.die_after is not None:
        specs.append(
            FaultSpec(site="runner.abort", at={"step": int(args.die_after)})
        )
    if getattr(args, "nan_at", None) is not None:
        specs.append(
            FaultSpec(
                site="brownian.forcing",
                kind="nan",
                at={"step": int(args.nan_at)},
                times=1,
            )
        )
    if not specs:
        return None
    return FaultPlan(
        specs=tuple(specs),
        seed=args.seed if hasattr(args, "seed") else 0,
    )


def _make_hub(args):
    """Build a ``TelemetryHub`` from ``--telemetry-dir``, or ``None``."""
    if getattr(args, "telemetry_dir", None) is None:
        return None
    from repro.telemetry import TelemetryHub

    kwargs = {
        "stream_budget": _stream_budget(args),
        "spill_dir": getattr(args, "spill_dir", None),
    }
    interval = getattr(args, "export_interval", None)
    if interval is not None:
        kwargs["export_interval"] = interval
    return TelemetryHub(args.telemetry_dir, **kwargs)


def _watch_loop(render, *, interval: float, count: Optional[int]) -> int:
    """Run ``render`` every ``interval`` seconds ``count`` times
    (forever when ``count`` is None, until interrupted)."""
    import time as _time

    done = 0
    while True:
        if done and sys.stdout.isatty():  # fresh frame between renders
            print("\x1b[2J\x1b[H", end="")
        code = render()
        done += 1
        if count is not None and done >= count:
            return code
        try:
            _time.sleep(interval)
        except KeyboardInterrupt:
            return 0


def _close_hub(hub, **attrs) -> None:
    if hub is not None:
        import repro.telemetry as _telemetry

        hub.close(**attrs)
        if _telemetry.active_hub is hub:
            _telemetry.uninstall()


def _simulate_resilient(args) -> int:
    from repro import (
        HealthMonitor,
        MrhsParameters,
        MrhsStokesianDynamics,
        SDParameters,
        random_configuration,
    )
    from repro.resilience import (
        CheckpointManager,
        ResilienceExhausted,
        ResilientRunner,
        SimulationKilled,
    )
    from repro.telemetry import NULL_HUB

    n_steps = args.steps if args.steps is not None else args.chunks * args.m
    system = random_configuration(args.n, args.phi, rng=args.seed)
    hub = _make_hub(args)
    driver = MrhsStokesianDynamics(
        system,
        SDParameters(dt=args.dt),
        MrhsParameters(m=args.m),
        rng=args.seed + 1,
        telemetry=NULL_HUB if hub is None else hub,
    )
    manager = None
    if args.checkpoint_every or args.checkpoint_dir is not None:
        manager = CheckpointManager(
            args.checkpoint_dir or "checkpoints",
            governor=None if hub is None else hub.governor,
            spill_dir=args.spill_dir,
        )
    monitor = (
        HealthMonitor()
        if (args.health_checks or args.reject_bad_steps)
        else None
    )
    runner = ResilientRunner(
        driver,
        manager=manager,
        checkpoint_every=args.checkpoint_every,
        injector=_kill_plan(args),
        monitor=monitor,
        reject_on_fatal=args.reject_bad_steps,
        memory_guard=_memory_guard(args),
    )
    try:
        try:
            report = runner.run_steps(n_steps)
        except SimulationKilled as exc:
            if hub is not None:
                hub.dump_flight("simulation-killed", error=str(exc)[:160])
            _close_hub(hub, killed=True)
            hub = None
            print(f"killed: {exc}; checkpoints remain in {manager.directory}")
            return 3
        except ResilienceExhausted as exc:
            if hub is not None:
                hub.dump_flight("resilience-exhausted", error=str(exc)[:160])
            print(f"aborted: {exc}", file=sys.stderr)
            if monitor is not None:
                print(monitor.report.summary(), file=sys.stderr)
                for r in monitor.report.fatal_events():
                    print(
                        f"  FATAL {r.check} at step {r.step_index}: {r.message}",
                        file=sys.stderr,
                    )
            return 4
    finally:
        _close_hub(hub)
    _print_run_summary(driver, report, manager, args.out, monitor=monitor)
    if args.telemetry_dir is not None:
        print(f"telemetry written to {args.telemetry_dir}")
    return 0


def _cmd_resume(args) -> int:
    from pathlib import Path

    from repro.resilience import (
        CheckpointManager,
        ResilientRunner,
        SimulationKilled,
        resume_driver,
    )

    hub = _make_hub(args)
    ckpt_kwargs = {
        "governor": None if hub is None else hub.governor,
        "spill_dir": args.spill_dir,
    }
    target = Path(args.checkpoint)
    if target.is_dir():
        manager = CheckpointManager(target, **ckpt_kwargs)
        state, meta, path = manager.load_latest()
    else:
        manager = CheckpointManager(target.parent, **ckpt_kwargs)
        state, meta = manager.load(target)
        path = target
    driver = resume_driver(state, telemetry=hub)
    sd = driver.sd if hasattr(driver, "sd") else driver
    print(
        f"resumed {meta.get('kind')} run from {path} "
        f"at global step {sd.step_index}"
    )
    remaining = args.steps - int(sd.step_index)
    if remaining < 0:
        print(
            f"error: checkpoint is already past step {args.steps}",
            file=sys.stderr,
        )
        return 2
    runner = ResilientRunner(
        driver,
        manager=manager,
        checkpoint_every=args.checkpoint_every,
        injector=_kill_plan(args),
        memory_guard=_memory_guard(args),
    )
    try:
        try:
            report = runner.run_steps(remaining)
        except SimulationKilled as exc:
            if hub is not None:
                hub.dump_flight("simulation-killed", error=str(exc)[:160])
            _close_hub(hub, killed=True)
            hub = None
            print(f"killed: {exc}; checkpoints remain in {manager.directory}")
            return 3
    finally:
        _close_hub(hub)
    _print_run_summary(driver, report, manager, args.out)
    return 0


def _cmd_simulate(args) -> int:
    if (
        args.checkpoint_every
        or args.checkpoint_dir is not None
        or args.health_checks
        or args.reject_bad_steps
        or args.nan_at is not None
        or args.telemetry_dir is not None
    ):
        return _simulate_resilient(args)
    from repro import SDParameters, random_configuration, run_comparison
    from repro.core.timing import average_breakdown
    from repro.util.tables import format_table

    system = random_configuration(args.n, args.phi, rng=args.seed)
    result = run_comparison(
        system,
        SDParameters(dt=args.dt),
        n_steps=args.chunks * args.m,
        m=args.m,
        rng=args.seed + 1,
    )
    it = result.iteration_comparison()
    bm = average_breakdown(chunks=result.mrhs_chunks)
    bo = average_breakdown(steps=result.original_steps)
    rows = [
        ["1st-solve iterations", round(it["with_guesses"], 1),
         round(it["without_guesses"], 1)],
        ["avg step time [s]", round(result.mrhs_average_step_time(), 4),
         round(result.original_average_step_time(), 4)],
        ["  of which 1st solve", round(bm["1st solve"], 4),
         round(bo["1st solve"], 4)],
    ]
    print(
        format_table(
            ["", "MRHS", "original"],
            rows,
            title=f"n={args.n}, phi={args.phi}, m={args.m}, "
            f"{args.chunks * args.m} steps",
        )
    )
    print(f"speedup (host wall-clock): {result.speedup():.2f}x")
    return 0


def _cmd_roofline(args) -> int:
    from repro.perfmodel.machine import SANDY_BRIDGE, WESTMERE, host_machine
    from repro.perfmodel.roofline import MatrixShape, relative_time, time_gspmv
    from repro.util.tables import format_table

    machine = {
        "wsm": WESTMERE,
        "snb": SANDY_BRIDGE,
    }.get(args.machine) or host_machine(quick=True)
    shape = MatrixShape(nb=args.nb, blocks_per_row=args.bpr)
    ms = [m for m in (1, 2, 4, 8, 16, 32, 64) if m <= args.m_max]
    rows = [
        [m, f"{1e3 * time_gspmv(shape, m, machine):.3f}",
         round(relative_time(shape, m, machine), 2)]
        for m in ms
    ]
    print(
        format_table(
            ["m", "T(m) [ms]", "r(m)"],
            rows,
            title=f"GSPMV model: nb={args.nb}, nnzb/nb={args.bpr}, "
            f"machine={machine.name} (B/F={machine.byte_per_flop:.2f})",
        )
    )
    at2x = max(m for m in ms if relative_time(shape, m, machine) <= 2.0)
    print(f"vectors within 2x of single-vector time: {at2x}")
    return 0


def _cmd_pack(args) -> int:
    from repro import random_configuration
    from repro.io import save_system

    system = random_configuration(args.n, args.phi, rng=args.seed)
    save_system(args.out, system)
    print(
        f"saved {system.n} particles at phi={system.volume_fraction:.3f} "
        f"to {args.out}"
    )
    return 0


def _cmd_sweep(args) -> int:
    from repro import SDParameters, random_configuration
    from repro.core.optimal_m import sweep_m
    from repro.perfmodel.machine import WESTMERE
    from repro.util.tables import format_table

    system = random_configuration(args.n, args.phi, rng=args.seed)
    result = sweep_m(
        system,
        SDParameters(),
        m_values=args.m_values,
        machine=WESTMERE,
        rng_seed=args.seed + 1,
    )
    rows = [[m, round(t, 4)] for m, t in result.as_rows()]
    print(
        format_table(
            ["m", "avg step time [s]"],
            rows,
            title=f"m sweep: n={args.n}, phi={args.phi}",
        )
    )
    print(
        f"measured m_optimal={result.m_optimal}; "
        f"model m_s={result.m_s} (WSM)"
    )
    return 0


def _cmd_health(args) -> int:
    from pathlib import Path

    from repro.health.monitor import HealthReport
    from repro.resilience import CheckpointManager

    target = Path(args.checkpoint)
    if target.is_dir():
        manager = CheckpointManager(target)
        state, meta, path = manager.load_latest()
    else:
        manager = CheckpointManager(target.parent)
        state, meta = manager.load(target)
        path = target
    health = state.get("health")
    if health is None:
        print(
            f"{path} carries no health report "
            f"(run simulate with --health-checks)",
            file=sys.stderr,
        )
        return 2
    report = HealthReport.from_state(health)
    print(f"health report from {path} (global step {meta.get('step')}):")
    print(report.summary())
    notable = [
        r for r in report.results if r.severity.name != "OK"
    ][-args.events :]
    for r in notable:
        print(
            f"  {r.severity.name} {r.check} at step {r.step_index}: "
            f"{r.message}"
        )
    if not notable:
        print("  no warn/fatal events in the retained window")
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from repro.telemetry.hub import TRACE_FILENAME
    from repro.telemetry.report import (
        render_phase_totals,
        render_trace_tree,
    )
    from repro.telemetry.tracer import read_trace

    target = Path(args.run)
    trace_path = target / TRACE_FILENAME if target.is_dir() else target
    if not trace_path.exists():
        print(f"error: no trace at {trace_path}", file=sys.stderr)
        return 2
    events = read_trace(trace_path)
    if not events:
        print(f"{trace_path} holds no span events", file=sys.stderr)
        return 2
    print(f"trace: {trace_path} ({len(events)} spans)")
    print()
    print(render_trace_tree(events, max_depth=args.depth))
    print()
    print(render_phase_totals(events))
    return 0


def _cmd_report(args) -> int:
    if args.watch is not None:
        return _watch_loop(
            lambda: _render_report(args),
            interval=args.watch,
            count=args.watch_count,
        )
    return _render_report(args)


def _render_report(args) -> int:
    import json as _json

    from repro.telemetry.report import (
        RooflineReport,
        load_run_metrics,
        render_engine_table,
        render_failover_table,
        resolve_machine,
    )

    machine = resolve_machine(args.machine)
    try:
        roofline = RooflineReport.from_run(
            args.run, machine, threshold=args.threshold
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    metrics = load_run_metrics(args.run)

    if args.json:
        print(
            _json.dumps(
                {"metrics": metrics, "roofline": roofline.as_dict()},
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    md = args.markdown
    print("## Metrics" if md else f"metrics summary ({args.run}):")
    if metrics is None:
        print("(no metrics.json in the run directory)")
    else:
        rows = []
        rows += sorted(metrics.get("counters", {}).items())
        rows += sorted(metrics.get("gauges", {}).items())
        rows += [
            (name, f"mean={h['mean']:.3e} (n={h['count']})")
            for name, h in sorted(metrics.get("histograms", {}).items())
        ]
        if md:
            print()
            print("| metric | value |")
            print("|---|---|")
            for name, value in rows:
                print(f"| `{name}` | {value} |")
            print()
        else:
            for name, value in rows:
                print(f"  {name} = {value}")
    failover = render_failover_table(metrics, markdown=md)
    if failover is not None:
        if md:
            print("## Failover")
            print()
        else:
            print()
        print(failover)
        if md:
            print()
    engine_table = render_engine_table(metrics, markdown=md)
    if engine_table is not None:
        if md:
            print("## Engine events")
            print()
        else:
            print()
        print(engine_table)
        if md:
            print()
    from pathlib import Path as _Path

    journal = _Path(args.run) / "journal.jsonl"
    if journal.exists():
        from repro.service import JobJournal, replay_records
        from repro.service.manager import job_table
        from repro.telemetry.report import render_jobs_table

        records, _valid = JobJournal.scan(journal)
        jobs_table = render_jobs_table(
            job_table(replay_records(records)[0]), markdown=md
        )
        if jobs_table is not None:
            if md:
                print("## Jobs")
                print()
            else:
                print()
            print(jobs_table)
            if md:
                print()
    print("## Roofline" if md else "")
    print(roofline.to_markdown())
    if roofline.flagged_rows:
        print()
        print(
            f"{len(roofline.flagged_rows)} row(s) deviate more than "
            f"{roofline.threshold:.0%} from the model"
        )
    return 0


def _parse_net_faults(spec: str, seed: int):
    """Parse the ``--net-faults`` grammar into a ``ChannelFaultPlan``.

    Entries are ``;``-separated; each is ``kind`` optionally followed by
    ``:key=val,key=val...``.  Integer keys map straight onto
    :class:`~repro.distributed.mpi_sim.ChannelFaultSpec` fields
    (``src``, ``dest``, ``tag``, ``seq``, ``rank``, ``times``,
    ``delay``); ``factor`` is a float; ``times=inf`` lifts the fire
    budget; ``step=N`` pins a crash to ``at={"step": N}``.
    """
    from repro.distributed.mpi_sim import ChannelFaultPlan, ChannelFaultSpec

    specs = []
    for entry in spec.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, rest = entry.partition(":")
        kind = kind.strip()
        kwargs = {}
        for pair in filter(None, (p.strip() for p in rest.split(","))):
            key, eq, value = pair.partition("=")
            if not eq:
                raise ValueError(
                    f"bad --net-faults parameter {pair!r} (expected key=val)"
                )
            key = key.strip()
            value = value.strip()
            if key == "step":
                kwargs["at"] = {"step": int(value)}
            elif key == "factor":
                kwargs["factor"] = float(value)
            elif key == "times" and value in ("inf", "none"):
                kwargs["times"] = None
            elif key in ("src", "dest", "tag", "seq", "rank", "times", "delay"):
                kwargs[key] = int(value)
            else:
                raise ValueError(f"unknown --net-faults key {key!r}")
        specs.append(ChannelFaultSpec(kind=kind, **kwargs))
    if not specs:
        return None
    return ChannelFaultPlan(specs=tuple(specs), seed=seed)


def _ring_bcrs(nb: int, block_size: int, seed: int):
    """A seeded block tridiagonal-with-wraparound test matrix: every
    block row couples to its two ring neighbours, so each rank boundary
    produces real halo traffic."""
    import numpy as np

    from repro.sparse.bcrs import BCRSMatrix

    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for i in range(nb):
        for j in (i - 1, i, i + 1):
            rows.append(i)
            cols.append(j % nb)
    blocks = rng.standard_normal((len(rows), block_size, block_size))
    return BCRSMatrix.from_block_coo(
        nb, nb, np.array(rows), np.array(cols), blocks
    )


def _cmd_distsim(args) -> int:
    import hashlib

    import numpy as np

    import repro.telemetry as _telemetry
    from repro.distributed import (
        DistributedSimulation,
        RankRecoveryManager,
        contiguous_partition,
    )
    from repro.resilience import CheckpointManager, RankFailure
    from repro.util.tables import format_table

    if args.ranks < 1 or args.nb < args.ranks:
        print("error: need nb >= ranks >= 1", file=sys.stderr)
        return 2
    try:
        plan = (
            _parse_net_faults(args.net_faults, args.seed)
            if args.net_faults
            else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    A = _ring_bcrs(args.nb, args.block_size, args.seed)
    partition = contiguous_partition(A, args.ranks)
    rng = np.random.default_rng(args.seed + 1)
    X0 = rng.standard_normal((A.n_rows, args.m))

    hub = _make_hub(args)
    if hub is not None:
        # Only the Stokesian drivers install their hub themselves; the
        # cluster substrate reads the ambient one.
        _telemetry.install(hub)

    recovery = None
    if args.checkpoint_every or args.checkpoint_dir is not None:
        manager = CheckpointManager(args.checkpoint_dir or "checkpoints")
        recovery = RankRecoveryManager(manager)
    sim = DistributedSimulation(
        A,
        partition,
        X0,
        fault_plan=plan,
        reliable=True if args.reliable else None,
        recovery=recovery,
        max_recoveries=args.max_recoveries,
        deadline=args.deadline,
        max_retries=args.max_retries,
    )
    try:
        try:
            sim.run_steps(
                args.steps, checkpoint_every=args.checkpoint_every
            )
        except RankFailure as exc:
            _close_hub(hub, failed=True)
            hub = None
            print(f"unrecovered rank failure: {exc}", file=sys.stderr)
            return 3
    finally:
        _close_hub(hub)

    ex = sim.dist.last_exchange or {}
    print(
        f"completed {sim.step_index} steps on {sim.n_parts} rank(s) "
        f"(started with {partition.n_parts}); m={sim.m}"
    )
    if plan is not None or args.reliable:
        counts = {
            k: len(ex.get(k) or ())
            for k in ("timeouts", "resends", "stragglers", "corrupted")
        }
        print(
            "last exchange: "
            + ", ".join(f"{k}={v}" for k, v in counts.items())
        )
    if sim.recoveries:
        rows = [
            [
                ",".join(map(str, r.dead_ranks)),
                r.restored_step,
                r.target_step,
                r.replayed_steps,
                r.rehomed_rows,
                f"{r.n_parts_before}->{r.n_parts_after}",
            ]
            for r in sim.recoveries
        ]
        print(
            format_table(
                ["dead", "rollback", "target", "replayed", "rehomed", "ranks"],
                rows,
                title="rank recoveries",
            )
        )
    digest = hashlib.sha256(
        np.ascontiguousarray(sim.X).tobytes()
    ).hexdigest()
    print(f"X sha256: {digest}")
    if args.telemetry_dir is not None:
        print(f"telemetry written to {args.telemetry_dir}")
    return 0


def _service_dir(raw: str):
    """Accept either the service directory or its journal path."""
    from pathlib import Path

    path = Path(raw)
    return path.parent if path.name == "journal.jsonl" else path


def _cmd_serve(args) -> int:
    import json as _json
    from pathlib import Path

    import repro.telemetry as _telemetry
    from repro.health import HealthMonitor, Severity
    from repro.service import (
        JobManager,
        JobSpec,
        ManagerKilled,
        ServiceConfig,
        SLOPolicy,
        TenantQuota,
    )
    from repro.telemetry.report import render_jobs_table

    budget = (
        None
        if args.mem_budget_mb is None
        else int(args.mem_budget_mb * (1 << 20))
    )
    slo = (
        SLOPolicy()
        if args.slo_target is None
        else SLOPolicy(latency_target_ticks=args.slo_target)
    )
    quotas = {}
    try:
        for raw in args.tenant_quota or ():
            tenant, sep, spec_text = raw.partition("=")
            if not sep or not tenant:
                raise ValueError(
                    f"expected TENANT=jobs=N,mem=SIZE,disk=SIZE, got {raw!r}"
                )
            quotas[tenant] = TenantQuota.parse(spec_text)
    except ValueError as exc:
        print(f"error: --tenant-quota: {exc}", file=sys.stderr)
        return 2
    compact = (
        None  # keep the ServiceConfig default (1 MiB)
        if args.compact_journal_kb is None
        else args.compact_journal_kb << 10
    )
    config_kwargs = {} if compact is None else {
        "journal_compact_bytes": compact or None  # 0 disables
    }
    mem_watermark = (
        None
        if args.mem_watermark_mb is None
        else int(args.mem_watermark_mb * (1 << 20))
    )
    config = ServiceConfig(
        quantum=args.quantum,
        queue_limit=args.queue_limit,
        shed_watermark=args.shed_watermark,
        mem_budget_bytes=budget,
        max_attempts=args.max_attempts,
        checkpoint_every=args.checkpoint_every,
        slo=slo,
        quotas=quotas,
        mem_watermark_bytes=mem_watermark,
        **config_kwargs,
    )
    hub = _make_hub(args)
    if hub is not None:
        # Installed globally so every layer under the manager — runner
        # scopes, kernel spans, health verdicts, fault firings — lands
        # on this hub's bus with the dispatch's correlation ids.
        _telemetry.install(hub)
    monitor = HealthMonitor(checks=())
    directory = _service_dir(args.dir)
    specs = []
    if args.jobs is not None:
        for doc in _json.loads(Path(args.jobs).read_text(encoding="utf-8")):
            specs.append(JobSpec.from_json(doc))
    inbox = directory / "inbox"
    if inbox.is_dir():
        for path in sorted(inbox.glob("*.json")):
            specs.append(
                JobSpec.from_json(
                    _json.loads(path.read_text(encoding="utf-8"))
                )
            )
    try:
        with JobManager(
            directory, config=config, telemetry=hub, monitor=monitor
        ) as mgr:
            if mgr.recovered_jobs:
                print(
                    f"recovered {mgr.recovered_jobs} unfinished job(s) "
                    "from the journal"
                )
            known = {j.spec.name for j in mgr.jobs.values()}
            for spec in specs:
                if spec.name in known:
                    continue  # already journaled (idempotent restart)
                mgr.submit(spec)
            report = mgr.run(max_ticks=args.max_ticks)
    except ManagerKilled as exc:
        print(f"error: {exc}", file=sys.stderr)
        if hub is not None:
            hub.dump_flight("manager-killed", error=str(exc)[:160])
        _close_hub(hub, command="serve", outcome="killed")
        return 3
    if monitor.report.worst() is not Severity.OK:
        print(monitor.report.summary())
    if args.json:
        print(_json.dumps(report.jobs, indent=2, sort_keys=True))
    else:
        table = render_jobs_table(report.jobs)
        if table is not None:
            print(table)
        print(
            f"{report.completed} done, {report.failed} failed, "
            f"{report.shed} shed, {report.rejected} rejected in "
            f"{report.ticks} ticks ({report.preemptions} preemptions, "
            f"{report.worker_crashes} worker crashes)"
        )
    _close_hub(hub, command="serve", outcome="drained")
    return 0 if report.failed == 0 else 1


def _cmd_submit(args) -> int:
    import json as _json

    from repro.io import atomic_write_text
    from repro.service import JobSpec

    spec = JobSpec(
        name=args.name,
        n=args.n,
        phi=args.phi,
        m=args.m,
        steps=args.steps,
        seed=args.seed,
        dt=args.dt,
        priority=args.priority,
        tenant=args.tenant,
        deadline=args.deadline,
    )
    inbox = _service_dir(args.dir) / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    target = inbox / f"{spec.name}.json"
    if target.exists():
        print(f"error: job {spec.name!r} already queued", file=sys.stderr)
        return 2
    atomic_write_text(target, _json.dumps(spec.to_json(), sort_keys=True))
    print(f"queued {spec.name!r} -> {target}")
    return 0


def _cmd_jobs(args) -> int:
    if args.watch is not None:
        return _watch_loop(
            lambda: _render_jobs(args),
            interval=args.watch,
            count=args.watch_count,
        )
    return _render_jobs(args)


def _render_jobs(args) -> int:
    import json as _json

    from repro.service import JobJournal, replay_records
    from repro.service.manager import job_table
    from repro.telemetry.report import render_jobs_table

    journal = _service_dir(args.dir) / "journal.jsonl"
    if not journal.exists():
        print(f"error: no journal at {journal}", file=sys.stderr)
        return 2
    records, _valid = JobJournal.scan(journal)
    jobs, last_tick, _dispatches = replay_records(records)
    rows = job_table(jobs)
    if args.json:
        print(_json.dumps(rows, indent=2, sort_keys=True))
        return 0
    table = render_jobs_table(rows)
    if table is None:
        print("(no jobs journaled)")
    else:
        print(table)
        print(f"{len(rows)} job(s), journal at tick {last_tick}")
    return 0


def _cmd_top(args) -> int:
    import json as _json
    from pathlib import Path

    from repro.telemetry.events import EVENTS_FILENAME, read_events
    from repro.telemetry.report import render_top

    directory = Path(args.run)

    def render() -> int:
        metrics = None
        metrics_path = directory / "metrics.json"
        stream_path = directory / "metrics.jsonl"
        if metrics_path.exists():
            try:
                metrics = _json.loads(
                    metrics_path.read_text(encoding="utf-8")
                )
            except ValueError:
                metrics = None  # mid-swap torn read: render without
        if metrics is None and stream_path.exists():
            # Fall back to the newest complete line of the history
            # stream (the same torn-tail tolerance the readers use).
            lines = stream_path.read_bytes().split(b"\n")
            for raw in reversed(lines):
                if not raw.strip():
                    continue
                try:
                    metrics = _json.loads(raw.decode("utf-8"))
                    break
                except (ValueError, UnicodeDecodeError):
                    continue
        events_path = directory / EVENTS_FILENAME
        events = read_events(events_path) if events_path.exists() else []
        print(render_top(metrics, events, tail=args.events, title=args.run))
        return 0

    count = 1 if args.once else args.iterations
    return _watch_loop(render, interval=args.interval, count=count)


def _cmd_faults(args) -> int:
    import json as _json

    from repro.resilience.faults import fault_site_catalogue

    catalogue = fault_site_catalogue()
    if args.json:
        print(
            _json.dumps(
                {
                    name: {"layer": layer, "description": desc}
                    for name, (layer, desc) in catalogue.items()
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    by_layer = {}
    for name, (layer, desc) in catalogue.items():
        by_layer.setdefault(layer, []).append((name, desc))
    width = max(len(name) for name in catalogue)
    for layer in sorted(by_layer):
        print(f"{layer}:")
        for name, desc in sorted(by_layer[layer]):
            print(f"  {name:<{width}}  {desc}")
    print(f"{len(catalogue)} fault site(s)")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "roofline": _cmd_roofline,
    "pack": _cmd_pack,
    "sweep": _cmd_sweep,
    "resume": _cmd_resume,
    "health": _cmd_health,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "distsim": _cmd_distsim,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "top": _cmd_top,
    "faults": _cmd_faults,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "engine", None) is not None:
        from repro.sparse import set_default_engine

        set_default_engine(args.engine)
    verify = getattr(args, "verify_kernels", None)
    if verify is not None:
        from repro.sparse import DEFAULT_VERIFY_CADENCE, get_engine_watch

        cadence = DEFAULT_VERIFY_CADENCE if verify < 0 else verify
        get_engine_watch().configure(cadence=cadence)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/`head` that exited early — not an
        # error.  Detach stdout so the interpreter shutdown does not
        # raise again on the implicit flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests of main()
    sys.exit(main())
