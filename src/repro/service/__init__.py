"""Fault-tolerant multi-tenant simulation job service.

Built on the resilience stack: a :class:`JobManager` journals every
job-state transition to a write-ahead log, schedules jobs with
admission control, priority-with-aging, checkpoint-backed preemption,
seeded retry backoff, and overload shedding — and survives being
killed at any instant (see :mod:`repro.service.manager`).
"""

from __future__ import annotations

from repro.resilience.faults import register_fault_site
from repro.service.clock import ServiceClock
from repro.service.errors import ManagerKilled, WorkerCrashed
from repro.service.journal import JobJournal
from repro.service.manager import (
    JobManager,
    ServiceConfig,
    ServiceInjector,
    ServiceReport,
    job_table,
    replay_records,
)
from repro.service.slo import SLOPolicy, SLOTracker
from repro.service.spec import (
    JobRecord,
    JobSpec,
    JobState,
    TenantQuota,
    estimate_job_bytes,
)
from repro.service.worker import JobWorker

__all__ = [
    "JobJournal",
    "JobManager",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobWorker",
    "ManagerKilled",
    "SLOPolicy",
    "SLOTracker",
    "ServiceClock",
    "ServiceConfig",
    "ServiceInjector",
    "ServiceReport",
    "TenantQuota",
    "WorkerCrashed",
    "estimate_job_bytes",
    "job_table",
    "replay_records",
]

register_fault_site(
    "service.journal",
    "service",
    "kill the manager mid-journal-append; `raise` leaves a torn "
    "half-written record, `zero` loses the record entirely "
    "(`at={'seq': n}`)",
)
register_fault_site(
    "service.dispatch",
    "service",
    "kill the manager right after journaling a dispatch, before the "
    "job slice runs (`at={'dispatch': k}` or `at={'job': id}`)",
)
register_fault_site(
    "service.worker_crash",
    "service",
    "crash the worker running a job mid-slice; the job requeues "
    "behind seeded backoff (`at={'job': id, 'step': s}`)",
)
register_fault_site(
    "service.clock",
    "service",
    "forward clock jump: a `scale` spec multiplies the current tick "
    "by `factor` (`at={'tick': t}`)",
)
