"""Write-ahead job journal: the service's single source of truth.

Every job-state transition is appended to ``journal.jsonl`` *before*
the manager acts on it, so a killed-and-restarted manager rebuilds the
exact job table by replay.  Framing is one self-checking JSON line per
record::

    {"seq": 17, "crc": "9a2b...", "rec": {"t": "admit", "job": 3, ...}}

``crc`` is the CRC-32 of ``seq`` plus the canonical encoding of
``rec``, so torn tails, bit flips, and interleaved garbage are all
detected per record.  Recovery (:meth:`JobJournal.recover`) replays
the longest valid prefix — records must also arrive in contiguous
``seq`` order — and truncates the file back to it, which makes *any*
prefix truncation of the journal a consistent state (the property test
in ``tests/test_service_journal.py`` drives this with hypothesis).

Durability stance: appends are flushed to the OS on every write (the
failure model is process death, same as the checkpoint layer); pass
``fsync=True`` to survive machine death too, at real I/O cost.

The ``service.journal`` fault site strikes mid-append: a ``"raise"``
spec writes *half* the encoded line and kills the manager (torn
write); a ``"zero"`` spec kills it before any bytes land (lost
record).  Both leave the on-disk prefix consistent by construction.

Resource pressure (PR 10): the journal is a **class-0 durable**
artifact.  An append that fails with ``ENOSPC``/``EDQUOT``/``EIO``
(real, or via the ``io.*`` fault sites) asks the
:class:`~repro.resources.governor.ResourceGovernor` to evict junior
artifacts, truncates any torn partial line back to the valid prefix,
and retries exactly once before surfacing the error.  Unbounded growth
is handled by :meth:`JobJournal.compact`: the live job table is
serialized as a single CRC'd ``snapshot`` record into a sibling temp
file, verified by a full re-scan, and atomically swapped in — the old
history is destroyed only after the snapshot is durable, so a crash at
*any* byte offset of the protocol recovers either the full old journal
or the verified snapshot (hypothesis-tested in
``tests/test_service_compaction.py``).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.resilience.faults import fire_fault
from repro.resources.iofaults import check_io_faults
from repro.service.errors import ManagerKilled

__all__ = ["JobJournal", "JournalRecord", "SNAPSHOT_KIND"]

#: Record type written by :meth:`JobJournal.compact` as sequence 1.
SNAPSHOT_KIND = "snapshot"

JournalRecord = Dict[str, Any]


def _encode(seq: int, rec: JournalRecord) -> bytes:
    body = json.dumps(rec, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(f"{seq}:{body}".encode("utf-8")) & 0xFFFFFFFF
    line = json.dumps(
        {"seq": seq, "crc": f"{crc:08x}", "rec": json.loads(body)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return line.encode("utf-8") + b"\n"


def _decode(line: bytes) -> Optional[Tuple[int, JournalRecord]]:
    """Parse + verify one framed line; ``None`` when invalid/torn."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict) or set(doc) != {"seq", "crc", "rec"}:
        return None
    seq, rec = doc["seq"], doc["rec"]
    if not isinstance(seq, int) or not isinstance(rec, dict):
        return None
    body = json.dumps(rec, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(f"{seq}:{body}".encode("utf-8")) & 0xFFFFFFFF
    if doc["crc"] != f"{crc:08x}":
        return None
    return seq, rec


class JobJournal:
    """Append-only, CRC-framed, crash-recoverable job log."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        fsync: bool = False,
        governor: Optional[Any] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.governor = governor
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = None
        self._seq = 0

    # ------------------------------------------------------------------
    @staticmethod
    def scan(path: Union[str, Path]) -> Tuple[List[JournalRecord], int]:
        """Replay ``path``: ``(records, valid_bytes)`` of the longest
        valid prefix.  Read-only — never mutates the file, so it is
        safe for the ``jobs`` CLI against a live journal.
        """
        path = Path(path)
        records: List[JournalRecord] = []
        offset = 0
        if not path.exists():
            return records, offset
        data = path.read_bytes()
        expect = 1
        while True:
            end = data.find(b"\n", offset)
            if end < 0:  # trailing partial line (torn write): stop here
                break
            decoded = _decode(data[offset:end])
            if decoded is None:
                break
            seq, rec = decoded
            if seq != expect:  # replayed/missing record: prefix ends
                break
            records.append(rec)
            offset = end + 1
            expect += 1
        return records, offset

    def recover(self) -> List[JournalRecord]:
        """Replay the journal, truncate any torn tail, open for append.

        Returns the replayed records; afterwards :meth:`append`
        continues the sequence numbering where the valid prefix ended.
        """
        records, valid = self.scan(self.path)
        if self.path.exists() and valid < self.path.stat().st_size:
            with open(self.path, "rb+") as fh:
                fh.truncate(valid)
        self._seq = len(records)
        return records

    # ------------------------------------------------------------------
    def _handle(self):
        if self._fh is None or self._fh.closed:
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, rec: JournalRecord) -> int:
        """Durably append one record; returns its sequence number.

        The ``service.journal`` fault site fires *inside* the append —
        see the module docstring for the torn/lost-write semantics.
        """
        seq = self._seq + 1
        payload = _encode(seq, rec)
        fh = self._handle()
        spec = fire_fault("service.journal", seq=seq)
        if spec is not None:
            if spec.kind == "raise":  # torn write: half the line, no \n
                fh.write(payload[: max(1, len(payload) // 2)])
                fh.flush()
            self.close()
            raise ManagerKilled(
                f"manager killed mid-journal-append (seq {seq}, "
                f"{'torn' if spec.kind == 'raise' else 'lost'} write)"
            )
        try:
            check_io_faults(self.path, writer="journal", seq=seq)
            fh.write(payload)
            fh.flush()
        except OSError:
            self._retry_append(payload)
            fh = self._fh  # the retry reopened the handle
        if self.fsync:
            os.fsync(fh.fileno())
        self._seq = seq
        return seq

    def _retry_append(self, payload: bytes) -> None:
        """Recover a class-0 append from a full disk: release + retry.

        The failed write may have landed a partial line, so the file is
        first truncated back to its longest valid prefix (re-scanned;
        this is a rare error path) before the single retry.  A second
        failure propagates — the journal never degrades silently.
        """
        self.close()
        if self.governor is not None:
            self.governor.emergency_release(max(len(payload) * 4, 1 << 16))
        _, valid = self.scan(self.path)
        if self.path.exists() and valid < self.path.stat().st_size:
            with open(self.path, "rb+") as fh:
                fh.truncate(valid)
        fh = self._handle()
        check_io_faults(self.path, writer="journal_retry")
        fh.write(payload)
        fh.flush()

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Current on-disk size of the journal (0 when absent)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def compact(
        self,
        snapshot: JournalRecord,
        *,
        kill_after_bytes: Optional[int] = None,
        kill_before_replace: bool = False,
        kill_after_replace: bool = False,
    ) -> int:
        """Replace the whole history with one verified snapshot record.

        Protocol (crash-safe at every byte):

        1. write ``snapshot`` as sequence 1 into ``<journal>.compact``
           in the same directory, flush + fsync;
        2. **verify** by fully re-scanning the temp file (exactly one
           record, zero torn bytes, payload round-trips);
        3. ``os.replace`` it over the journal, fsync the directory;
        4. resume appending at sequence 2.

        A crash before step 3 leaves the old journal untouched (the
        stale ``.compact`` temp is ignored by recovery and unlinked by
        the next compaction); a crash after step 3 leaves the verified
        snapshot.  Either way recovery rebuilds the same job table.

        The ``kill_*`` hooks crash the manager at the named point (for
        the hypothesis crash-equivalence tests).  Returns the new
        journal size in bytes.
        """
        tmp = self.path.with_name(self.path.name + ".compact")
        tmp.unlink(missing_ok=True)
        payload = _encode(1, snapshot)
        check_io_faults(tmp, writer="journal_compact")
        with open(tmp, "wb") as fh:
            if kill_after_bytes is not None and kill_after_bytes < len(
                payload
            ):
                fh.write(payload[:kill_after_bytes])
                fh.flush()
                raise ManagerKilled(
                    f"manager killed mid-compaction (snapshot torn at "
                    f"byte {kill_after_bytes})"
                )
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        records, valid = self.scan(tmp)
        if (
            len(records) != 1
            or records[0] != snapshot
            or valid != tmp.stat().st_size
        ):
            tmp.unlink(missing_ok=True)
            raise OSError(f"compaction snapshot failed verification: {tmp}")
        if kill_before_replace:
            raise ManagerKilled(
                "manager killed after snapshot verify, before swap"
            )
        self.close()
        os.replace(tmp, self.path)
        dir_fd = os.open(self.path.parent or Path("."), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._seq = 1
        if kill_after_replace:
            raise ManagerKilled("manager killed after compaction swap")
        return self.size_bytes()

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
