"""Per-job execution: a checkpointed driver behind one interface.

A :class:`JobWorker` owns everything one job needs to run, die, and
resume — the per-job :class:`~repro.resilience.checkpoint.CheckpointManager`
directory and (while warm) a live driver wrapped in a
:class:`~repro.resilience.runner.ResilientRunner`.  The manager only
ever asks it to *run toward the job's total step count*: preemption and
crashes are simulated kills inside ``run_steps``, which is the one
resume path proven bit-exact against a solo run (chunk boundaries
depend on the remaining-step target, so slicing with small
``run_steps`` calls would change the trajectory).

Workers run with :data:`~repro.telemetry.NULL_HUB`; service-level
telemetry (queue wait, retries, preemptions) lives at the manager.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.runner import ResilientRunner, RunReport, resume_driver
from repro.service.spec import JobSpec

__all__ = ["JobWorker"]


def _fresh_driver(spec: JobSpec) -> Any:
    """Build the job's driver from its spec (same idiom as the
    ``simulate`` CLI: ``seed`` packs the system, ``seed + 1`` drives
    the noise stream)."""
    from repro import (
        MrhsParameters,
        MrhsStokesianDynamics,
        SDParameters,
        random_configuration,
    )
    from repro.telemetry import NULL_HUB

    system = random_configuration(spec.n, spec.phi, rng=spec.seed)
    return MrhsStokesianDynamics(
        system,
        SDParameters(dt=spec.dt),
        MrhsParameters(m=spec.m),
        rng=spec.seed + 1,
        telemetry=NULL_HUB,
    )


class JobWorker:
    """Run one job's simulation, checkpointed, resumable after death."""

    def __init__(
        self,
        spec: JobSpec,
        directory: Union[str, Path],
        *,
        checkpoint_every: int = 4,
        retry: Optional[Any] = None,
        sleep: Optional[Any] = None,
        governor: Optional[Any] = None,
        spill_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.spec = spec
        self.checkpoints = CheckpointManager(
            Path(directory), governor=governor, spill_dir=spill_dir
        )
        self.checkpoint_every = int(checkpoint_every)
        self._retry = retry
        self._sleep = sleep
        self._runner: Optional[ResilientRunner] = None

    # ------------------------------------------------------------------
    def _build(self) -> ResilientRunner:
        """(Re)materialise the runner: newest loadable checkpoint if
        one exists, else a fresh driver from the spec."""
        try:
            state, _meta, _path = self.checkpoints.load_latest()
            driver = resume_driver(state)
        except FileNotFoundError:
            driver = _fresh_driver(self.spec)
        kwargs = {} if self._retry is None else {"retry": self._retry}
        return ResilientRunner(
            driver,
            manager=self.checkpoints,
            checkpoint_every=self.checkpoint_every,
            injector=None,  # polls the manager's single armed injector
            sleep=self._sleep,
            **kwargs,
        )

    @property
    def runner(self) -> ResilientRunner:
        if self._runner is None:
            self._runner = self._build()
        return self._runner

    @property
    def step_index(self) -> int:
        """Steps this worker would resume from (driver if warm, else
        newest checkpoint, else 0)."""
        if self._runner is not None:
            return self._runner.step_index
        latest = self.checkpoints.latest()
        if latest is None:
            return 0
        return int(latest.stem.rsplit("-", 1)[1])

    @property
    def warm(self) -> bool:
        return self._runner is not None

    # ------------------------------------------------------------------
    def run(self, n_steps: int) -> RunReport:
        """Advance ``n_steps`` healthy steps (may raise
        :class:`~repro.resilience.faults.SimulationKilled` when the
        manager's injector preempts or crash-kills this slice)."""
        return self.runner.run_steps(n_steps)

    def checkpoint_now(self) -> Path:
        """Synchronously checkpoint the live driver (preemption path)."""
        runner = self.runner
        return self.checkpoints.save(
            runner.driver.get_state(), step=runner.step_index
        )

    def discard(self) -> None:
        """Simulate worker death: drop the in-memory driver.  The next
        :meth:`run` resumes from the newest on-disk checkpoint."""
        self._runner = None

    def digest(self) -> str:
        """SHA-256 of the current particle positions (bit-identity
        check against solo runs)."""
        sd = self.runner.driver.sd
        return hashlib.sha256(
            np.ascontiguousarray(sd.system.positions).tobytes()
        ).hexdigest()
