"""Deterministic scheduler clock.

The service measures queue wait, aging, deadlines, and retry backoff
in **ticks** of a logical clock rather than wall time, so every
scheduling decision — and therefore every campaign — replays
identically.  The manager advances the clock once per scheduler
iteration and once per completed simulation step, and fast-forwards it
over idle backoff windows instead of sleeping.

The ``service.clock`` fault site strikes on :meth:`advance`: a
``"scale"`` spec multiplies the current tick (a forward jump, e.g. NTP
slew or a suspended VM), which must never shed an admitted job or
derail recovery — the clock-jump chaos campaign pins that down.
"""

from __future__ import annotations

from repro.resilience.faults import fire_fault

__all__ = ["ServiceClock"]


class ServiceClock:
    """Monotonic logical clock; integer ticks, deterministic faults."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("start must be non-negative")
        self._now = int(start)
        self.jumps = 0
        """Count of injected clock jumps (``service.clock`` fires)."""

    @property
    def now(self) -> int:
        return self._now

    def advance(self, ticks: int = 1) -> int:
        """Move forward ``ticks``; returns the new time."""
        if ticks < 0:
            raise ValueError("the clock never runs backwards")
        self._now += int(ticks)
        spec = fire_fault("service.clock", tick=self._now)
        if spec is not None and spec.kind == "scale":
            # A forward jump: the clock suddenly reads far later.
            self._now = int(self._now * max(1.0, spec.factor))
            self.jumps += 1
        return self._now

    def fast_forward(self, to: int) -> int:
        """Jump idle time to ``to`` (no-op when already past it)."""
        self._now = max(self._now, int(to))
        return self._now

    def restore(self, now: int) -> None:
        """Reset after journal recovery (monotonic across restarts)."""
        self._now = max(self._now, int(now))
