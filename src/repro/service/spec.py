"""Job model for the multi-tenant simulation service.

A :class:`JobSpec` is everything needed to reproduce one simulation
run bit-exactly — workload parameters plus the seed — together with
the service-level knobs (priority, deadline).  A :class:`JobRecord` is
the manager's mutable view of one submitted job walking the state
machine

    PENDING -> ADMITTED -> RUNNING -> PREEMPTED -> ... -> DONE
        \\-> REJECTED (submit-time)        \\-> FAILED
        \\-> SHED (overload / deadline, never after admission)

Transitions are validated (:meth:`JobRecord.transition`), so a
scheduler bug that tries to shed an admitted job or resurrect a done
one fails loudly instead of corrupting the table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "JobSpec",
    "JobState",
    "JobRecord",
    "TenantQuota",
    "estimate_job_bytes",
]


class JobState(enum.Enum):
    """Lifecycle of one submitted job."""

    PENDING = "pending"
    """Journaled, not yet admitted; the only state shedding may touch."""
    ADMITTED = "admitted"
    """Resources reserved; the service now guarantees completion or
    bounded-retry exhaustion (never shedding)."""
    RUNNING = "running"
    """Currently holding the (single) execution slot."""
    PREEMPTED = "preempted"
    """Checkpointed and paused in favor of a higher-priority job."""
    DONE = "done"
    FAILED = "failed"
    SHED = "shed"
    """Dropped under overload or past its deadline — before admission."""
    REJECTED = "rejected"
    """Refused at submit time (queue depth / impossible memory fit)."""

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE, JobState.FAILED, JobState.SHED, JobState.REJECTED
        )


#: Legal state-machine edges (see module docstring).
_TRANSITIONS = {
    JobState.PENDING: {JobState.ADMITTED, JobState.SHED, JobState.REJECTED},
    JobState.ADMITTED: {JobState.RUNNING},
    JobState.RUNNING: {
        JobState.PREEMPTED, JobState.DONE, JobState.FAILED,
        # Worker crash: the job goes back to the queue for a retry.
        JobState.ADMITTED,
    },
    JobState.PREEMPTED: {JobState.RUNNING},
    JobState.DONE: set(),
    JobState.FAILED: set(),
    JobState.SHED: set(),
    JobState.REJECTED: set(),
}


@dataclass(frozen=True)
class JobSpec:
    """One simulation job: workload + seed + service knobs.

    The workload fields mirror the ``simulate`` CLI; ``seed`` pins the
    packing and noise streams so the job's trajectory is a pure
    function of the spec — the property every recovery guarantee in
    the service leans on.
    """

    name: str
    n: int = 24
    """Particles."""
    phi: float = 0.2
    """Volume occupancy."""
    m: int = 4
    """Right-hand sides per MRHS chunk."""
    steps: int = 8
    """Total time steps the job must complete."""
    seed: int = 0
    dt: float = 0.05
    priority: int = 0
    """Base priority; larger runs sooner (aging lifts waiters)."""
    tenant: str = "default"
    """Billing/SLO identity.  Latency histograms, burn-rate gauges and
    violation verdicts are all keyed by this label."""
    deadline: Optional[int] = None
    """Ticks after submission by which the job must be *admitted*;
    pending jobs past it are shed.  Admission stops the clock — an
    admitted job always runs to completion or retry exhaustion."""

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError("name must be a non-empty bare identifier")
        if self.n < 2:
            raise ValueError("n must be >= 2")
        if not 0 < self.phi < 0.64:
            raise ValueError("phi must be in (0, 0.64)")
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if not self.tenant or "/" in self.tenant:
            raise ValueError("tenant must be a non-empty bare identifier")
        if self.deadline is not None and self.deadline < 1:
            raise ValueError("deadline must be >= 1 tick")

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name, "n": self.n, "phi": self.phi, "m": self.m,
            "steps": self.steps, "seed": self.seed, "dt": self.dt,
            "priority": self.priority, "tenant": self.tenant,
            "deadline": self.deadline,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobSpec":
        known = {k: doc[k] for k in cls.__dataclass_fields__ if k in doc}
        unknown = set(doc) - set(known)
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {sorted(unknown)}")
        return cls(**known)


def estimate_job_bytes(spec: JobSpec) -> int:
    """Coarse admission-control memory estimate for one live job.

    Dominated by the BCRS resistance matrix (3x3 blocks, ~a few dozen
    neighbors per particle at liquid-like occupancy) plus the m-wide
    noise/guess matrices and the in-memory checkpoint snapshot.  This
    is a *budgeting* figure, deliberately pessimistic; it only needs to
    rank jobs and sum sensibly against ``mem_budget_bytes``.
    """
    b = 3  # 3x3 mobility blocks
    blocks = spec.n * (1 + 48 * spec.phi)  # diag + neighbor blocks
    matrix = blocks * (b * b * 8 + 4) * 2  # values+indices, matrix+precond
    vectors = spec.n * b * 8 * (6 + 4 * spec.m)  # state, noise Z, guesses U
    return int(2 * (matrix + vectors)) + (1 << 20)  # x2 snapshot + fixed


@dataclass
class JobRecord:
    """The manager's mutable bookkeeping for one submitted job."""

    job_id: int
    spec: JobSpec
    state: JobState = JobState.PENDING
    submitted_tick: int = 0
    admitted_tick: Optional[int] = None
    finished_tick: Optional[int] = None
    steps_done: int = 0
    attempts: int = 0
    """Job-level retry count (worker crashes, in-job exhaustion)."""
    next_eligible_tick: int = 0
    """Backoff gate: not scheduled before this tick."""
    preemptions: int = 0
    digest: Optional[str] = None
    """SHA-256 of the final positions (set on DONE)."""
    reason: str = ""
    """Why the job was rejected, shed, or failed."""
    extra: Dict[str, Any] = field(default_factory=dict)

    def transition(self, new: JobState, *, reason: str = "") -> None:
        if new not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"job {self.spec.name!r}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.state = new
        if reason:
            self.reason = reason

    def effective_priority(self, now: int, aging_rate: float) -> float:
        """Base priority lifted by queue wait (priority-with-aging).

        Aging accrues from submission until the job first runs, so a
        low-priority job's claim keeps strengthening and starvation is
        impossible: after ``(p_hi - p_lo) / aging_rate`` ticks it
        outranks any fresh high-priority arrival.
        """
        anchor = self.submitted_tick
        return self.spec.priority + aging_rate * max(0, now - anchor)

    @property
    def remaining_steps(self) -> int:
        return max(0, self.spec.steps - self.steps_done)

    # ------------------------------------------------------------------
    # serialization (journal compaction snapshots)
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_json(),
            "state": self.state.value,
            "submitted_tick": self.submitted_tick,
            "admitted_tick": self.admitted_tick,
            "finished_tick": self.finished_tick,
            "steps_done": self.steps_done,
            "attempts": self.attempts,
            "next_eligible_tick": self.next_eligible_tick,
            "preemptions": self.preemptions,
            "digest": self.digest,
            "reason": self.reason,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "JobRecord":
        known = {k: doc[k] for k in cls.__dataclass_fields__ if k in doc}
        unknown = set(doc) - set(known)
        if unknown:
            raise ValueError(f"unknown JobRecord fields: {sorted(unknown)}")
        known["spec"] = JobSpec.from_json(known["spec"])
        known["state"] = JobState(known["state"])
        return cls(**known)


@dataclass(frozen=True)
class TenantQuota:
    """Hard per-tenant resource caps, enforced by the manager.

    Unlike the SLO layer (which *observes* and reports), a quota
    *vetoes*: a tenant at its cap has new work rejected at submit time
    or parked at admission ("waiting: tenant quota"), and a tenant
    whose on-disk artifact footprint crosses ``max_disk_bytes`` has
    pending jobs SHED — all with recorded reasons, and all without
    touching other tenants' scheduling.  ``None`` means uncapped.
    """

    max_concurrent: Optional[int] = None
    """Live (admitted/running/preempted) jobs at once."""
    max_resident_bytes: Optional[int] = None
    """Summed :func:`estimate_job_bytes` of the tenant's live jobs."""
    max_disk_bytes: Optional[int] = None
    """On-disk footprint of the tenant's job directories."""

    def __post_init__(self) -> None:
        for name in (
            "max_concurrent", "max_resident_bytes", "max_disk_bytes"
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None)")

    @classmethod
    def parse(cls, text: str) -> "TenantQuota":
        """Parse the CLI form ``jobs=N,mem=SIZE,disk=SIZE`` (any subset).

        Sizes accept the ``k``/``m``/``g`` binary suffixes of
        :func:`repro.resources.parse_size`.
        """
        from repro.resources.rotate import parse_size

        kwargs: Dict[str, Any] = {}
        for part in str(text).split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"quota clause {part!r} is not key=value "
                    "(expected jobs=N,mem=SIZE,disk=SIZE)"
                )
            key, value = (s.strip() for s in part.split("=", 1))
            if key == "jobs":
                kwargs["max_concurrent"] = int(value)
            elif key == "mem":
                kwargs["max_resident_bytes"] = parse_size(value)
            elif key == "disk":
                kwargs["max_disk_bytes"] = parse_size(value)
            else:
                raise ValueError(
                    f"unknown quota key {key!r} (expected jobs/mem/disk)"
                )
        return cls(**kwargs)
