"""Per-tenant SLO accounting for the job service.

The service's promise is stated per tenant: a job should reach a
terminal state within ``latency_target_ticks`` logical ticks of
submission, and at most an ``error_budget`` fraction of a tenant's
recent jobs may miss that target (or fail outright).  The
:class:`SLOTracker` turns every finished job into

* a latency observation in ``slo.latency_ticks{tenant=...}``,
* a hit/miss counter pair, and
* a **burn rate** gauge ``slo.burn_rate{tenant=...}`` — the fraction of
  the rolling window that missed, divided by the error budget.  Burn
  1.0 means the tenant is consuming its budget exactly as fast as
  allowed; sustained burn above ``burn_threshold`` is a violation.

Violations surface through the same
:meth:`~repro.health.monitor.HealthMonitor.observe_external` path the
kernel watchdog uses, so an operator reading ``repro health`` — or a
checkpointed health history — sees SLO trouble next to physics
trouble.  The WARN fires on the *transition* into violation (and an
``slo``-category bus event records every burning window), so a tenant
pinned over budget does not flood the report ring.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional

from repro.health.invariants import Severity

__all__ = ["SLOPolicy", "SLOTracker"]


@dataclass(frozen=True)
class SLOPolicy:
    """The per-tenant service-level objective."""

    latency_target_ticks: int = 32
    """Submission-to-terminal latency target, in logical ticks."""
    error_budget: float = 0.25
    """Allowed miss fraction over the rolling window."""
    window: int = 32
    """Rolling window size, in finished jobs per tenant."""
    min_samples: int = 4
    """No verdicts before this many finished jobs (cold-start guard)."""
    burn_threshold: float = 1.0
    """Burn rate above which the tenant is in violation."""

    def __post_init__(self) -> None:
        if self.latency_target_ticks < 1:
            raise ValueError("latency_target_ticks must be >= 1")
        if not 0 < self.error_budget <= 1:
            raise ValueError("error_budget must be in (0, 1]")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")


class SLOTracker:
    """Rolling per-tenant hit/miss windows over finished jobs."""

    def __init__(
        self,
        policy: SLOPolicy,
        *,
        hub: Any,
        monitor: Optional[Any] = None,
    ) -> None:
        self.policy = policy
        self.hub = hub
        self.monitor = monitor
        self._windows: Dict[str, Deque[bool]] = {}
        self._burning: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def observe(
        self,
        tenant: str,
        *,
        latency_ticks: int,
        failed: bool = False,
        job_id: Optional[int] = None,
    ) -> float:
        """Fold one finished job into the tenant's window.

        Returns the tenant's burn rate after the observation.
        """
        policy = self.policy
        miss = failed or latency_ticks > policy.latency_target_ticks
        metrics = self.hub.metrics
        metrics.histogram("slo.latency_ticks", tenant=tenant).observe(
            float(latency_ticks)
        )
        kind = "misses" if miss else "hits"
        metrics.counter(f"slo.{kind}", tenant=tenant).inc()
        window = self._windows.setdefault(
            tenant, deque(maxlen=policy.window)
        )
        window.append(miss)
        burn = self.burn_rate(tenant)
        metrics.gauge("slo.burn_rate", tenant=tenant).set(burn)
        burning = (
            len(window) >= policy.min_samples
            and burn > policy.burn_threshold
        )
        if burning:
            metrics.counter("slo.violations", tenant=tenant).inc()
            self.hub.emit_event(
                "slo",
                "burn",
                tenant=tenant,
                burn=round(burn, 4),
                window=len(window),
                latency=int(latency_ticks),
                job_id=job_id,
            )
            if not self._burning.get(tenant) and self.monitor is not None:
                self.monitor.observe_external(
                    check=f"slo:{tenant}",
                    severity=Severity.WARN,
                    message=(
                        f"tenant {tenant!r} burn rate {burn:.2f} over "
                        f"threshold {policy.burn_threshold:g} "
                        f"({sum(window)}/{len(window)} recent jobs missed "
                        f"the {policy.latency_target_ticks}-tick target)"
                    ),
                )
        elif self._burning.get(tenant) and len(window) >= policy.min_samples:
            self.hub.emit_event(
                "slo", "recovered", tenant=tenant, burn=round(burn, 4)
            )
        self._burning[tenant] = burning
        return burn

    def burn_rate(self, tenant: str) -> float:
        """Miss fraction over the window, divided by the error budget."""
        window = self._windows.get(tenant)
        if not window:
            return 0.0
        miss_frac = sum(window) / len(window)
        return miss_frac / self.policy.error_budget

    def violating(self, tenant: str) -> bool:
        return bool(self._burning.get(tenant))

    def tenants(self) -> Dict[str, float]:
        """Current burn rate per observed tenant."""
        return {t: self.burn_rate(t) for t in sorted(self._windows)}
