"""Failure taxonomy of the job service.

Both exceptions model *simulated process death* — the in-process
analogue of ``kill -9`` on the manager or a worker — and both are
:class:`~repro.resilience.faults.FaultInjected` so drill faults are
distinguishable from organic errors everywhere in the stack.
"""

from __future__ import annotations

from repro.resilience.faults import FaultInjected

__all__ = ["ManagerKilled", "WorkerCrashed"]


class ManagerKilled(FaultInjected):
    """The job manager died mid-operation (simulated process kill).

    Raised by the ``service.dispatch`` and ``service.journal`` fault
    sites — and by an un-translated ``runner.abort`` striking while a
    job slice runs.  The journal on disk is the recovery contract: a
    new :class:`~repro.service.manager.JobManager` over the same
    directory rebuilds every job's state and finishes the work.
    """


class WorkerCrashed(FaultInjected):
    """A worker died while running a job slice.

    The manager survives: the job's in-memory driver is discarded, the
    attempt counter bumped, and the job re-queued behind its seeded
    retry backoff to resume from its last checkpoint.
    """
