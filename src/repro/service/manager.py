"""The fault-tolerant multi-tenant job manager.

:class:`JobManager` owns one service directory::

    <dir>/journal.jsonl          write-ahead job journal (source of truth)
    <dir>/jobs/<id>/ckpt/        per-job checkpoints

and runs an in-process scheduler loop over submitted
:class:`~repro.service.spec.JobSpec` jobs:

* **admission control** at submit time (queue depth, impossible memory
  fit) and at schedule time (aggregate memory budget) — rejected and
  waiting jobs each carry an explicit reason;
* **priority with aging** so low-priority jobs cannot starve;
* **checkpoint-backed preemption**: a long job past its quantum is
  killed at an exact step boundary (the proven bit-exact resume path)
  and later resumes toward the *same* total step target, so its
  trajectory bit-matches an uninterrupted run;
* **retry with seeded-jitter exponential backoff** (in clock ticks)
  after worker crashes, bounded by ``max_attempts``;
* **overload shedding** that only ever drops never-admitted jobs.

Every decision is journaled *before* it is acted on, so a manager
killed at any instant — mid-dispatch, mid-append, mid-run — is rebuilt
exactly by constructing a new :class:`JobManager` over the same
directory.  The ``service.dispatch``, ``service.journal``,
``service.worker_crash`` and ``service.clock`` fault sites make those
kills deterministic drills (see ``tests/test_service_chaos.py``).
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulationKilled,
    active_injector,
    arm,
    disarm,
    fire_fault,
)
from repro.resilience.policies import (
    BackoffPolicy,
    ResilienceExhausted,
    RetryPolicy,
)
from repro.resources.governor import MemoryGuard
from repro.service.clock import ServiceClock
from repro.service.errors import ManagerKilled
from repro.service.journal import SNAPSHOT_KIND, JobJournal, JournalRecord
from repro.service.slo import SLOPolicy, SLOTracker
from repro.service.spec import (
    JobRecord,
    JobSpec,
    JobState,
    TenantQuota,
    estimate_job_bytes,
)
from repro.service.worker import JobWorker
from repro.telemetry import context as _obs

__all__ = [
    "JobManager",
    "ServiceConfig",
    "ServiceInjector",
    "ServiceReport",
    "job_table",
    "replay_records",
]

#: States that hold an admission-control memory reservation.
_LIVE = (JobState.ADMITTED, JobState.RUNNING, JobState.PREEMPTED)


@dataclass(frozen=True)
class ServiceConfig:
    """Scheduler knobs.  Everything is deterministic: time is logical
    ticks, backoff jitter is seeded, and priorities age linearly."""

    quantum: int = 0
    """Steps per dispatch before preemption; ``0`` disables time
    slicing (every job runs to completion once scheduled)."""
    queue_limit: int = 64
    """Submit-time cap on PENDING jobs; beyond it, reject."""
    shed_watermark: Optional[int] = None
    """Overload trigger: when more than this many jobs are PENDING,
    the lowest-effective-priority ones are shed down to the mark."""
    mem_budget_bytes: Optional[int] = None
    """Aggregate :func:`~repro.service.spec.estimate_job_bytes` budget
    across admitted-but-unfinished jobs; ``None`` disables it."""
    max_attempts: int = 3
    """Job-level attempt budget (worker crashes, in-job exhaustion)."""
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(
            base=2.0, multiplier=2.0, cap=64.0, jitter=0.25, seed=0
        )
    )
    """Retry backoff in *ticks* between attempts of a crashed job."""
    aging_rate: float = 0.05
    """Priority gained per tick of queue wait (starvation-freedom)."""
    checkpoint_every: int = 4
    """Per-job checkpoint cadence (steps); ``0`` = only on preemption
    and completion of a slice."""
    keep_warm: bool = True
    """Keep a preempted job's driver in memory; ``False`` drops it and
    resumes from its checkpoint (slower, smaller footprint)."""
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    """Step-level retry policy handed to each job's runner."""
    fsync_journal: bool = False
    slo: Optional[SLOPolicy] = field(default_factory=SLOPolicy)
    """Per-tenant SLO accounting; ``None`` disables the tracker."""
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    """Hard per-tenant caps (``tenant -> TenantQuota``).  Enforced as
    submit-time vetoes, admission parking, and pending-job SHED when a
    tenant's on-disk footprint crosses its cap; an empty dict (the
    default) skips every quota code path."""
    journal_compact_bytes: Optional[int] = 1 << 20
    """Journal size above which :meth:`JobManager` compacts the history
    into one snapshot record; ``None`` disables compaction."""
    mem_watermark_bytes: Optional[int] = None
    """Process-RSS watermark: on a breach the manager drops warm
    preempted workers (they resume from checkpoints) and records a
    WARN.  ``None`` disables the guard."""

    def __post_init__(self) -> None:
        if self.quantum < 0:
            raise ValueError("quantum must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.shed_watermark is not None and self.shed_watermark < 0:
            raise ValueError("shed_watermark must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.aging_rate < 0:
            raise ValueError("aging_rate must be non-negative")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if (
            self.journal_compact_bytes is not None
            and self.journal_compact_bytes < 1024
        ):
            raise ValueError("journal_compact_bytes must be >= 1024")
        if (
            self.mem_watermark_bytes is not None
            and self.mem_watermark_bytes < 1
        ):
            raise ValueError("mem_watermark_bytes must be positive")


@dataclass
class ServiceReport:
    """Outcome of one :meth:`JobManager.run` drain."""

    ticks: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    rejected: int = 0
    preemptions: int = 0
    worker_crashes: int = 0
    clock_jumps: int = 0
    faults: List[FaultEvent] = field(default_factory=list)
    jobs: List[Dict[str, Any]] = field(default_factory=list)
    """Final job table (same rows as :meth:`JobManager.table`)."""


class ServiceInjector(FaultInjector):
    """The manager's single armed injector.

    Per-job runners poll the *global* armed injector, so this class is
    where service semantics attach to the generic ``runner.abort``
    poll that fires after every healthy step:

    1. a pending **preemption target** returns a kill spec at the
       exact step boundary the scheduler chose;
    2. otherwise the poll is *translated* into a
       ``service.worker_crash`` fire with the running job's id, so
       campaign specs can crash a worker mid-slice deterministically;
    3. otherwise it falls through to plain ``runner.abort`` specs —
       which the manager interprets as its *own* death mid-run.

    :meth:`take_control_kind` tells the manager which of the three
    produced the :class:`~repro.resilience.faults.SimulationKilled` it
    just caught.
    """

    _PREEMPT = FaultSpec(site="runner.abort", times=None)

    def __init__(
        self,
        plan: Union[FaultPlan, FaultSpec, List[FaultSpec], None] = None,
    ) -> None:
        super().__init__(plan if plan is not None else FaultPlan())
        self.current_job: Optional[int] = None
        self.preempt_at: Optional[int] = None
        self._control: Optional[str] = None

    def fire(self, site: str, **context: int) -> Optional[FaultSpec]:
        if site == "runner.abort":
            step = context.get("step")
            if self.preempt_at is not None and step == self.preempt_at:
                self.preempt_at = None
                self._control = "preempt"
                self.events.append(
                    FaultEvent(
                        site="service.preempt",
                        context={
                            "job": -1 if self.current_job is None
                            else self.current_job,
                            "step": int(step or 0),
                        },
                        spec_index=-1,
                        fire_number=1,
                    )
                )
                return self._PREEMPT
            if self.current_job is not None:
                spec = super().fire(
                    "service.worker_crash",
                    job=self.current_job,
                    step=int(step or 0),
                )
                if spec is not None:
                    self._control = "worker_crash"
                    return spec
            self._control = None
        return super().fire(site, **context)

    def take_control_kind(self) -> Optional[str]:
        kind, self._control = self._control, None
        return kind


def replay_records(
    records: List[JournalRecord],
) -> Tuple[Dict[int, JobRecord], int, int]:
    """Rebuild the job table from journal records.

    Pure function (no I/O): used by manager recovery, the read-only
    ``jobs`` CLI, and the prefix-truncation property test.  Returns
    ``(jobs, last_tick, dispatches)``.  States are assigned directly —
    a journal ending mid-sequence (e.g. ``dispatch`` with no outcome)
    is precisely the crash case replay must absorb, so the transition
    validator does not apply here; jobs left RUNNING are rewound to
    ADMITTED for re-dispatch from their newest checkpoint.
    """
    jobs: Dict[int, JobRecord] = {}
    last_tick = 0
    dispatches = 0
    for rec in records:
        last_tick = max(last_tick, int(rec.get("tick", 0)))
        kind = rec.get("t")
        if kind == "recovered":
            continue
        if kind == SNAPSHOT_KIND:
            # Compaction boundary: the record *is* the whole job table
            # at that instant; later records apply on top of it.
            jobs = {
                int(doc["job_id"]): JobRecord.from_json(doc)
                for doc in rec.get("jobs", [])
            }
            dispatches = max(dispatches, int(rec.get("dispatches", 0)))
            continue
        job_id = int(rec["job"])
        if kind == "submit":
            jobs[job_id] = JobRecord(
                job_id,
                JobSpec.from_json(rec["spec"]),
                submitted_tick=int(rec["tick"]),
            )
            continue
        job = jobs.get(job_id)
        if job is None:  # torn prefix lost the submit: nothing to do
            continue
        if kind == "reject":
            job.state = JobState.REJECTED
            job.reason = rec.get("reason", "")
        elif kind == "admit":
            job.state = JobState.ADMITTED
            job.admitted_tick = int(rec["tick"])
        elif kind == "shed":
            job.state = JobState.SHED
            job.reason = rec.get("reason", "")
        elif kind == "dispatch":
            job.state = JobState.RUNNING
            job.steps_done = max(job.steps_done, int(rec["from_step"]))
            dispatches = max(dispatches, int(rec.get("dispatch", 0)))
        elif kind == "preempt":
            job.state = JobState.PREEMPTED
            job.steps_done = max(job.steps_done, int(rec["at_step"]))
            job.preemptions += 1
        elif kind == "crash":
            job.state = JobState.ADMITTED
            job.attempts = int(rec["attempt"])
            job.next_eligible_tick = int(rec["next_eligible"])
        elif kind == "done":
            job.state = JobState.DONE
            job.steps_done = int(rec["steps"])
            job.digest = rec.get("digest")
            job.finished_tick = int(rec["tick"])
        elif kind == "failed":
            job.state = JobState.FAILED
            job.reason = rec.get("reason", "")
            job.finished_tick = int(rec["tick"])
    for job in jobs.values():
        if job.state is JobState.RUNNING:
            # Manager died mid-slice: back to the queue; the worker
            # resumes from its newest on-disk checkpoint.
            job.state = JobState.ADMITTED
    return jobs, last_tick, dispatches


def job_table(jobs: Dict[int, JobRecord]) -> List[Dict[str, Any]]:
    """One summary row per job, submission order (feeds
    :func:`repro.telemetry.report.render_jobs_table`)."""
    rows = []
    for job_id in sorted(jobs):
        job = jobs[job_id]
        wait = (
            None
            if job.admitted_tick is None
            else job.admitted_tick - job.submitted_tick
        )
        rows.append(
            {
                "job": job_id,
                "name": job.spec.name,
                "tenant": job.spec.tenant,
                "state": job.state.value,
                "priority": job.spec.priority,
                "steps": f"{job.steps_done}/{job.spec.steps}",
                "wait": wait,
                "attempts": job.attempts,
                "preemptions": job.preemptions,
                "digest": (job.digest or "")[:12],
                "reason": job.reason,
            }
        )
    return rows


class JobManager:
    """Accepts, schedules, and survives the loss of simulation jobs."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        config: Optional[ServiceConfig] = None,
        telemetry: Optional[Any] = None,
        monitor: Optional[Any] = None,
        fault_plan: Union[
            FaultPlan,
            FaultSpec,
            List[FaultSpec],
            "ServiceInjector",
            None,
        ] = None,
    ) -> None:
        from repro.telemetry import NULL_HUB

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config if config is not None else ServiceConfig()
        self.hub = NULL_HUB if telemetry is None else telemetry
        self.monitor = monitor
        self.slo = (
            None
            if self.config.slo is None
            else SLOTracker(self.config.slo, hub=self.hub, monitor=monitor)
        )
        self.clock = ServiceClock()
        if isinstance(fault_plan, ServiceInjector):
            # A campaign's chaos agent outlives manager incarnations:
            # passing the same injector keeps each spec's fire budget
            # spent across kill/restart cycles.
            self.injector = fault_plan
            self.injector.current_job = None
            self.injector.preempt_at = None
        else:
            self.injector = ServiceInjector(fault_plan)
        self.jobs: Dict[int, JobRecord] = {}
        self._workers: Dict[int, JobWorker] = {}
        self._dispatches = 0
        self.recovered_jobs = 0
        self.governor = getattr(self.hub, "governor", None)
        self.memguard = (
            None
            if self.config.mem_watermark_bytes is None
            else MemoryGuard(self.config.mem_watermark_bytes)
        )
        self.journal = JobJournal(
            self.directory / "journal.jsonl",
            fsync=self.config.fsync_journal,
            governor=self.governor,
        )
        records = self.journal.recover()
        if records:
            self.jobs, last_tick, self._dispatches = replay_records(records)
            self.clock.restore(last_tick)
            self.recovered_jobs = sum(
                1 for j in self.jobs.values() if not j.state.terminal
            )
            self.journal.append(
                {
                    "t": "recovered",
                    "jobs": self.recovered_jobs,
                    "tick": self.clock.now,
                }
            )
            # Recovery replayed the whole history — the cheapest moment
            # to fold it into one snapshot if it has grown past budget.
            self._maybe_compact()

    # -- plumbing ------------------------------------------------------
    @contextlib.contextmanager
    def _armed(self) -> Iterator[None]:
        """Arm this manager's injector unless it already is (at most
        one injector may be armed globally)."""
        if active_injector() is self.injector:
            yield
            return
        arm(self.injector)
        try:
            yield
        finally:
            disarm()

    def _counter(self, name: str):
        return self.hub.metrics.counter(name)

    def _event(self, kind: str, job: JobRecord, **attrs: Any) -> None:
        """One job-lifecycle event on the unified bus, stamped with the
        correlation identifiers a post-mortem grep joins on."""
        self.hub.emit_event(
            "service",
            kind,
            job_id=job.job_id,
            tenant=job.spec.tenant,
            name=job.spec.name,
            tick=self.clock.now,
            **attrs,
        )

    def _job_dir(self, job_id: int) -> Path:
        return self.directory / "jobs" / str(job_id) / "ckpt"

    def _worker_for(self, job: JobRecord) -> JobWorker:
        worker = self._workers.get(job.job_id)
        if worker is None:
            governor = self.governor
            spill = getattr(governor, "spill_dir", None)
            worker = JobWorker(
                job.spec,
                self._job_dir(job.job_id),
                checkpoint_every=self.config.checkpoint_every,
                retry=self.config.retry,
                # Step-level retry backoff is *virtual* inside the
                # service (accounted in the run report, never slept).
                sleep=lambda _s: None,
                governor=governor,
                # Namespace the shared spill directory per job: two
                # jobs' checkpoints carry the same prefix-step names.
                spill_dir=(
                    Path(spill) / "jobs" / str(job.job_id)
                    if spill is not None
                    else None
                ),
            )
            self._workers[job.job_id] = worker
        return worker

    def _release(self, job_id: int) -> None:
        self._workers.pop(job_id, None)

    def _reserved_bytes(self) -> int:
        return sum(
            estimate_job_bytes(j.spec)
            for j in self.jobs.values()
            if j.state in _LIVE
        )

    # -- resource governance -------------------------------------------
    def _tenant_live(self, tenant: str) -> List[JobRecord]:
        return [
            j
            for j in self.jobs.values()
            if j.state in _LIVE and j.spec.tenant == tenant
        ]

    def _tenant_disk_bytes(self, tenant: str) -> int:
        """On-disk footprint of one tenant's job directories."""
        total = 0
        for job in self.jobs.values():
            if job.spec.tenant != tenant:
                continue
            root = self.directory / "jobs" / str(job.job_id)
            if not root.exists():
                continue
            for entry in root.rglob("*"):
                try:
                    if entry.is_file():
                        total += entry.stat().st_size
                except OSError:
                    continue
        return total

    def _quota_failed(self, job: JobRecord) -> None:
        """Report a quota veto/shed into the tenant's SLO accounting."""
        if self.slo is not None:
            self.slo.observe(
                job.spec.tenant,
                latency_ticks=self.clock.now - job.submitted_tick,
                failed=True,
                job_id=job.job_id,
            )

    def _enforce_disk_quotas(self) -> None:
        """SHED pending jobs of tenants over their disk cap.

        Only never-admitted jobs are touched (the admission guarantee
        holds); live jobs run on, and other tenants are unaffected.
        """
        sheds: Dict[int, str] = {}
        shed_jobs: List[JobRecord] = []
        for tenant, quota in self.config.quotas.items():
            if quota.max_disk_bytes is None:
                continue
            used = self._tenant_disk_bytes(tenant)
            if used <= quota.max_disk_bytes:
                continue
            for job in self.jobs.values():
                if (
                    job.spec.tenant == tenant
                    and job.state is JobState.PENDING
                ):
                    sheds[job.job_id] = (
                        f"tenant quota: disk {used} bytes over the "
                        f"{quota.max_disk_bytes}-byte cap"
                    )
                    shed_jobs.append(job)
        if sheds:
            self._shed(sheds)
            self._counter("service.quota_sheds").inc(len(sheds))
            for job in shed_jobs:
                self._quota_failed(job)

    def _check_memory(self) -> None:
        """RSS-watermark guard: drop warm preempted workers on breach."""
        if self.memguard is None:
            return
        rss = self.memguard.check()
        if rss is None:
            return
        dropped = 0
        for job_id, worker in list(self._workers.items()):
            job = self.jobs.get(job_id)
            if job is not None and job.state is JobState.PREEMPTED:
                worker.discard()  # resumes from its checkpoint
                dropped += 1
        self._counter("service.memory_breaches").inc()
        self.hub.emit_event(
            "resources",
            "memory_watermark",
            rss_bytes=rss,
            watermark_bytes=self.config.mem_watermark_bytes,
            warm_workers_dropped=dropped,
            tick=self.clock.now,
        )
        if self.monitor is not None:
            from repro.health.monitor import Severity

            self.monitor.observe_external(
                check="memory.watermark",
                severity=Severity.WARN,
                message=(
                    f"rss {rss} bytes over the "
                    f"{self.config.mem_watermark_bytes}-byte watermark "
                    f"({dropped} warm workers dropped)"
                ),
            )

    def _snapshot_record(self) -> JournalRecord:
        return {
            "t": SNAPSHOT_KIND,
            "tick": self.clock.now,
            "dispatches": self._dispatches,
            "jobs": [
                self.jobs[job_id].to_json() for job_id in sorted(self.jobs)
            ],
        }

    def _maybe_compact(self) -> None:
        """Fold the journal into one snapshot once it outgrows budget.

        Compaction is strictly optional: an I/O failure here leaves the
        old journal untouched and valid, so it is logged and skipped
        rather than allowed to take the service down.
        """
        limit = self.config.journal_compact_bytes
        if limit is None or self.journal.size_bytes() < limit:
            return
        before = self.journal.size_bytes()
        try:
            after = self.journal.compact(self._snapshot_record())
        except OSError:
            self._counter("service.compact_failures").inc()
            return
        self._counter("service.journal_compactions").inc()
        self.hub.emit_event(
            "service",
            "journal_compact",
            before_bytes=before,
            after_bytes=after,
            tick=self.clock.now,
        )

    # -- submission ----------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Journal and admit-or-reject one job.  Raises
        :class:`~repro.service.errors.ManagerKilled` when a journal
        fault strikes (the simulated process kill)."""
        if any(j.spec.name == spec.name for j in self.jobs.values()):
            raise ValueError(f"duplicate job name {spec.name!r}")
        with self._armed():
            now = self.clock.now
            job_id = max(self.jobs, default=0) + 1
            job = JobRecord(job_id, spec, submitted_tick=now)
            self.journal.append(
                {
                    "t": "submit",
                    "job": job_id,
                    "spec": spec.to_json(),
                    "tick": now,
                }
            )
            self.jobs[job_id] = job
            self._counter("service.jobs_submitted").inc()
            self._event("submit", job, priority=spec.priority)
            reason = self._admission_veto(spec)
            if reason is not None:
                self.journal.append(
                    {
                        "t": "reject",
                        "job": job_id,
                        "reason": reason,
                        "tick": now,
                    }
                )
                job.transition(JobState.REJECTED, reason=reason)
                self._counter("service.jobs_rejected").inc()
                self._event("reject", job, reason=reason)
                if reason.startswith("tenant quota"):
                    self._quota_failed(job)
        return job

    def _admission_veto(self, spec: JobSpec) -> Optional[str]:
        """Submit-time reject reason, or ``None`` to enqueue."""
        pending = sum(
            1 for j in self.jobs.values() if j.state is JobState.PENDING
        )
        if pending > self.config.queue_limit:
            return (
                f"queue full ({pending - 1}/{self.config.queue_limit} "
                "pending)"
            )
        budget = self.config.mem_budget_bytes
        if budget is not None:
            need = estimate_job_bytes(spec)
            if need > budget:
                return (
                    f"job needs ~{need} bytes, over the "
                    f"{budget}-byte budget even alone"
                )
        quota = self.config.quotas.get(spec.tenant)
        if quota is not None and quota.max_resident_bytes is not None:
            need = estimate_job_bytes(spec)
            if need > quota.max_resident_bytes:
                self._counter("service.quota_vetoes").inc()
                return (
                    f"tenant quota: job needs ~{need} bytes, over the "
                    f"tenant's {quota.max_resident_bytes}-byte memory "
                    "cap even alone"
                )
        return None

    # -- scheduling ----------------------------------------------------
    def _shed(self, reasons: Dict[int, str]) -> None:
        for job_id, reason in reasons.items():
            job = self.jobs[job_id]
            self.journal.append(
                {
                    "t": "shed",
                    "job": job_id,
                    "reason": reason,
                    "tick": self.clock.now,
                }
            )
            job.transition(JobState.SHED, reason=reason)
            self._counter("service.jobs_shed").inc()
            self._event("shed", job, reason=reason)

    def _shed_overloaded(self) -> None:
        now = self.clock.now
        cfg = self.config
        pending = [
            j for j in self.jobs.values() if j.state is JobState.PENDING
        ]
        sheds: Dict[int, str] = {}
        for job in pending:
            deadline = job.spec.deadline
            if deadline is not None and now > job.submitted_tick + deadline:
                sheds[job.job_id] = (
                    f"deadline: not admitted within {deadline} ticks"
                )
        if cfg.shed_watermark is not None:
            alive = [j for j in pending if j.job_id not in sheds]
            excess = len(alive) - cfg.shed_watermark
            if excess > 0:
                alive.sort(
                    key=lambda j: (
                        j.effective_priority(now, cfg.aging_rate),
                        -j.job_id,  # newest first among equals
                    )
                )
                for job in alive[:excess]:
                    sheds[job.job_id] = (
                        f"overload: {len(alive)} pending > "
                        f"watermark {cfg.shed_watermark}"
                    )
        if sheds:
            self._shed(sheds)

    def _admit_eligible(self) -> None:
        now = self.clock.now
        cfg = self.config
        pending = sorted(
            (j for j in self.jobs.values() if j.state is JobState.PENDING),
            key=lambda j: (
                -j.effective_priority(now, cfg.aging_rate),
                j.job_id,
            ),
        )
        reserved = self._reserved_bytes()
        for job in pending:
            need = estimate_job_bytes(job.spec)
            if (
                cfg.mem_budget_bytes is not None
                and reserved + need > cfg.mem_budget_bytes
            ):
                job.reason = "waiting: memory budget"
                continue
            quota = cfg.quotas.get(job.spec.tenant)
            if quota is not None:
                live = self._tenant_live(job.spec.tenant)
                if (
                    quota.max_concurrent is not None
                    and len(live) >= quota.max_concurrent
                ):
                    job.reason = (
                        f"waiting: tenant quota ({len(live)}/"
                        f"{quota.max_concurrent} jobs live)"
                    )
                    continue
                if quota.max_resident_bytes is not None:
                    tenant_bytes = sum(
                        estimate_job_bytes(j.spec) for j in live
                    )
                    if tenant_bytes + need > quota.max_resident_bytes:
                        job.reason = (
                            "waiting: tenant quota (resident memory)"
                        )
                        continue
            self.journal.append(
                {"t": "admit", "job": job.job_id, "tick": now}
            )
            job.transition(JobState.ADMITTED)
            job.admitted_tick = now
            reserved += need
            self._counter("service.jobs_admitted").inc()
            self.hub.metrics.histogram("service.queue_wait_ticks").observe(
                float(now - job.submitted_tick)
            )
            self._event("admit", job, wait=now - job.submitted_tick)

    def _pick(self) -> Optional[JobRecord]:
        now = self.clock.now
        runnable = [
            j
            for j in self.jobs.values()
            if j.state in (JobState.ADMITTED, JobState.PREEMPTED)
            and j.next_eligible_tick <= now
        ]
        if not runnable:
            return None
        return max(
            runnable,
            key=lambda j: (
                j.effective_priority(now, self.config.aging_rate),
                -j.job_id,
            ),
        )

    # -- execution -----------------------------------------------------
    def _run_slice(self, job: JobRecord) -> None:
        cfg = self.config
        self._dispatches += 1
        dispatch = self._dispatches
        worker = self._worker_for(job)
        from_step = worker.step_index
        self.journal.append(
            {
                "t": "dispatch",
                "job": job.job_id,
                "from_step": from_step,
                "dispatch": dispatch,
                "tick": self.clock.now,
            }
        )
        if fire_fault(
            "service.dispatch", job=job.job_id, dispatch=dispatch
        ) is not None:
            self.journal.close()
            raise ManagerKilled(
                f"manager killed mid-dispatch {dispatch} "
                f"(job {job.spec.name!r})"
            )
        job.transition(JobState.RUNNING)
        remaining = job.spec.steps - from_step
        if cfg.quantum and remaining > cfg.quantum:
            self.injector.preempt_at = from_step + cfg.quantum
        self.injector.current_job = job.job_id
        # One correlation scope per dispatch: every span, health
        # verdict, fault and engine event the slice produces joins back
        # to (job_id, tenant, run_id) on the bus.
        run_id = f"{job.job_id}.{dispatch}"
        self._event(
            "resume" if from_step else "dispatch",
            job,
            from_step=from_step,
            dispatch=dispatch,
            run_id=run_id,
        )
        try:
            with _obs.scope(
                job_id=job.job_id, tenant=job.spec.tenant, run_id=run_id
            ):
                with self.hub.tracer.span(
                    "service.slice", job=job.spec.name, dispatch=dispatch
                ):
                    worker.run(remaining)
        except SimulationKilled as exc:
            control = self.injector.take_control_kind()
            if control == "preempt":
                self._preempt(job, worker)
                return
            if control == "worker_crash":
                self._crash(job, reason=str(exc))
                return
            # Untranslated runner.abort: the *manager* dies mid-run.
            self.journal.close()
            raise ManagerKilled(
                f"manager killed while job {job.spec.name!r} ran: {exc}"
            ) from exc
        except ResilienceExhausted as exc:
            self._crash(job, reason=f"resilience exhausted: {exc}")
            return
        finally:
            self.injector.preempt_at = None
            self.injector.current_job = None
        # Slice ran to the job's total target: it is done.
        job.steps_done = worker.step_index
        self.clock.advance(max(1, job.steps_done - from_step))
        job.digest = worker.digest()
        self.journal.append(
            {
                "t": "done",
                "job": job.job_id,
                "steps": job.steps_done,
                "digest": job.digest,
                "tick": self.clock.now,
            }
        )
        job.transition(JobState.DONE)
        job.finished_tick = self.clock.now
        self._release(job.job_id)
        self._counter("service.jobs_completed").inc()
        self.hub.metrics.counter(
            "service.tenant_jobs", tenant=job.spec.tenant, state="done"
        ).inc()
        self._event(
            "done", job, steps=job.steps_done, digest=(job.digest or "")[:12]
        )
        if self.slo is not None:
            self.slo.observe(
                job.spec.tenant,
                latency_ticks=job.finished_tick - job.submitted_tick,
                job_id=job.job_id,
            )

    def _preempt(self, job: JobRecord, worker: JobWorker) -> None:
        # Checkpoint *before* journaling: if the append kills the
        # manager, replay rewinds the job to ADMITTED and the resume
        # point is this checkpoint either way.
        worker.checkpoint_now()
        job.steps_done = worker.step_index
        job.preemptions += 1
        self.clock.advance(max(1, self.config.quantum))
        self.journal.append(
            {
                "t": "preempt",
                "job": job.job_id,
                "at_step": job.steps_done,
                "tick": self.clock.now,
            }
        )
        job.transition(JobState.PREEMPTED)
        if not self.config.keep_warm:
            worker.discard()
        self._counter("service.preemptions").inc()
        self._event("preempt", job, at_step=job.steps_done)

    def _crash(self, job: JobRecord, *, reason: str) -> None:
        """A worker died mid-slice: requeue behind backoff or fail."""
        job.attempts += 1
        self._counter("service.worker_crashes").inc()
        # The in-memory driver is poisoned; resume from checkpoints.
        worker = self._workers.get(job.job_id)
        if worker is not None:
            worker.discard()
        self.clock.advance(1)
        if job.attempts >= self.config.max_attempts:
            self.journal.append(
                {
                    "t": "failed",
                    "job": job.job_id,
                    "reason": reason,
                    "tick": self.clock.now,
                }
            )
            job.transition(JobState.FAILED, reason=reason)
            job.finished_tick = self.clock.now
            self._release(job.job_id)
            self._counter("service.jobs_failed").inc()
            self.hub.metrics.counter(
                "service.tenant_jobs", tenant=job.spec.tenant, state="failed"
            ).inc()
            self._event("failed", job, reason=reason[:160])
            if self.slo is not None:
                self.slo.observe(
                    job.spec.tenant,
                    latency_ticks=job.finished_tick - job.submitted_tick,
                    failed=True,
                    job_id=job.job_id,
                )
            return
        delay = self.config.backoff.delay(job.attempts, key=job.job_id)
        job.next_eligible_tick = self.clock.now + max(1, math.ceil(delay))
        self.journal.append(
            {
                "t": "crash",
                "job": job.job_id,
                "attempt": job.attempts,
                "next_eligible": job.next_eligible_tick,
                "reason": reason,
                "tick": self.clock.now,
            }
        )
        job.transition(JobState.ADMITTED)
        self._counter("service.job_retries").inc()
        self._event(
            "crash",
            job,
            attempt=job.attempts,
            next_eligible=job.next_eligible_tick,
            reason=reason[:160],
        )

    # -- the scheduler loop --------------------------------------------
    def run(self, *, max_ticks: Optional[int] = None) -> ServiceReport:
        """Drain the queue: schedule until every job is terminal.

        Raises :class:`~repro.service.errors.ManagerKilled` when an
        armed fault kills the manager mid-operation; the journal and
        per-job checkpoints on disk are then the recovery contract for
        the next ``JobManager`` over this directory.
        """
        with self._armed():
            while True:
                self.clock.advance()
                self._tick_stats()
                self._check_memory()
                self._maybe_compact()
                if max_ticks is not None and self.clock.now >= max_ticks:
                    break
                self._shed_overloaded()
                if self.config.quotas:
                    self._enforce_disk_quotas()
                self._admit_eligible()
                job = self._pick()
                if job is not None:
                    self._run_slice(job)
                    continue
                waiting = [
                    j.next_eligible_tick
                    for j in self.jobs.values()
                    if j.state in (JobState.ADMITTED, JobState.PREEMPTED)
                ]
                if waiting:  # everyone runnable is in a backoff window
                    self.clock.fast_forward(min(waiting))
                    continue
                if any(
                    j.state is JobState.PENDING for j in self.jobs.values()
                ):
                    # Unreachable by construction (a lone pending job
                    # always fits: over-budget specs are rejected at
                    # submit), but never hang — shed explicitly.
                    self._shed(
                        {
                            j.job_id: (
                                j.reason.replace(
                                    "waiting: ", "unschedulable: ", 1
                                )
                                if j.reason.startswith("waiting: ")
                                else "unschedulable: memory budget"
                            )
                            for j in self.jobs.values()
                            if j.state is JobState.PENDING
                        }
                    )
                    continue
                break
        return self.report()

    def _tick_stats(self) -> None:
        """Queue-depth gauges plus the exporter's logical heartbeat."""
        counts: Dict[str, int] = {}
        for j in self.jobs.values():
            counts[j.state.value] = counts.get(j.state.value, 0) + 1
        for state in ("pending", "admitted", "running", "preempted"):
            self.hub.metrics.gauge("service.queue_depth", state=state).set(
                float(counts.get(state, 0))
            )
        for tenant in self.config.quotas:
            live = self._tenant_live(tenant)
            self.hub.metrics.gauge(
                "service.tenant_live_jobs", tenant=tenant
            ).set(float(len(live)))
            self.hub.metrics.gauge(
                "service.tenant_resident_bytes", tenant=tenant
            ).set(float(sum(estimate_job_bytes(j.spec) for j in live)))
        self.hub.pulse(tick=self.clock.now)

    # -- reporting -----------------------------------------------------
    def table(self) -> List[Dict[str, Any]]:
        """One summary row per job, submission order."""
        return job_table(self.jobs)

    def _count(self, state: JobState) -> int:
        return sum(1 for j in self.jobs.values() if j.state is state)

    def report(self) -> ServiceReport:
        return ServiceReport(
            ticks=self.clock.now,
            completed=self._count(JobState.DONE),
            failed=self._count(JobState.FAILED),
            shed=self._count(JobState.SHED),
            rejected=self._count(JobState.REJECTED),
            preemptions=sum(j.preemptions for j in self.jobs.values()),
            worker_crashes=sum(j.attempts for j in self.jobs.values()),
            clock_jumps=self.clock.jumps,
            faults=list(self.injector.events),
            jobs=self.table(),
        )

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
