"""Unified telemetry: span tracing, metrics, and roofline reporting.

Two ways in:

* **Driver-held hub** — ``StokesianDynamics(..., telemetry=hub)`` /
  ``MRHSDriver(..., telemetry=hub)``.  Drivers default to
  :data:`NULL_HUB`, so instrumented driver code calls
  ``self.telemetry.tracer.span(...)`` unconditionally.
* **Module-level hub** — the kernel hot paths (``sparse/gspmv.py``,
  ``sparse/spmv.py``, the solvers) have no driver instance, so they
  consult :data:`active_hub` here.  It is ``None`` when telemetry is
  disabled, and every hot site guards with ``if active_hub is not
  None`` — one attribute lookup per call when off.

Passing ``telemetry=`` to a driver also :func:`install`\\ s the hub
globally (unless one is already installed), so kernel spans land in the
same trace as the driver's chunk/step spans.

The roofline report lives in :mod:`repro.telemetry.report`; it is
imported lazily because it pulls in :mod:`repro.perfmodel`.
"""

from __future__ import annotations

from typing import Optional

from . import context
from .events import EVENTS_FILENAME, NULL_BUS, BusEvent, EventBus, read_events
from .exporter import (
    MetricsExporter,
    parse_prometheus_text,
    prom_key,
    render_prometheus,
)
from .hub import NULL_HUB, TelemetryHub, gspmv_bytes, gspmv_flops
from .metrics import (
    NULL_METRICS,
    WITHDRAWN_KEY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from .recorder import FlightRecorder
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    read_trace,
)

__all__ = [
    "TelemetryHub",
    "NULL_HUB",
    "BusEvent",
    "EventBus",
    "EVENTS_FILENAME",
    "NULL_BUS",
    "read_events",
    "MetricsExporter",
    "parse_prometheus_text",
    "prom_key",
    "render_prometheus",
    "FlightRecorder",
    "WITHDRAWN_KEY",
    "context",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "NULL_SPAN",
    "JsonlSink",
    "read_trace",
    "MetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "exponential_buckets",
    "gspmv_bytes",
    "gspmv_flops",
    "active_hub",
    "install",
    "uninstall",
]

#: The globally installed hub consulted by kernel-level instrumentation.
#: ``None`` means disabled; hot paths pay one attribute lookup + None
#: check per call.
active_hub: Optional[TelemetryHub] = None


def install(hub: TelemetryHub) -> TelemetryHub:
    """Make ``hub`` the globally active hub (kernel spans flow to it)."""
    global active_hub
    active_hub = hub
    return hub


def uninstall() -> None:
    """Disable module-level telemetry (drivers holding a hub keep it)."""
    global active_hub
    active_hub = None
