"""The unified event bus: one causally-ordered ``events.jsonl``.

Every *discrete* incident across the stack lands here as one line —
engine events (demotions, miscompares, quarantines), health verdicts,
fault-injection firings, checkpoint writes, and job state transitions
— stamped with a monotonic sequence number, a wall-clock timestamp,
and the current correlation ids from :mod:`repro.telemetry.context`.
Appends happen in program order from a single-threaded runtime, so
``seq`` *is* the causal order: sorting (or just reading) the file
reconstructs what happened, and filtering by ``job_id`` reconstructs
one job's story across every layer.

The file is append-only (a resumed service extends it) and the reader
mirrors the job journal's longest-valid-prefix rule: a torn final line
from a crash mid-append is skipped and counted, never raised.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from . import context as _context

__all__ = [
    "BusEvent",
    "EventBus",
    "EVENTS_FILENAME",
    "NULL_BUS",
    "read_events",
]

EVENTS_FILENAME = "events.jsonl"

_CORR = _context.CORRELATION_FIELDS


@dataclass(frozen=True)
class BusEvent:
    """One incident on the bus, as it appears in ``events.jsonl``."""

    seq: int
    ts: float
    """Wall-clock seconds (annotation only; ``seq`` carries the order)."""
    category: str
    """Emitting layer: ``service``/``engine``/``health``/``fault``/
    ``checkpoint``/``slo``."""
    kind: str
    correlation: Dict[str, Any] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        doc: Dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "cat": self.category,
            "kind": self.kind,
        }
        doc.update(self.correlation)
        if self.attrs:
            doc["attrs"] = self.attrs
        return json.dumps(doc, sort_keys=True)

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "BusEvent":
        return cls(
            seq=int(doc["seq"]),
            ts=float(doc["ts"]),
            category=str(doc["cat"]),
            kind=str(doc["kind"]),
            correlation={k: doc[k] for k in _CORR if k in doc},
            attrs=dict(doc.get("attrs", {})),
        )


def read_events(
    path: Union[str, Path], *, with_stats: bool = False
) -> Union[List[BusEvent], Tuple[List[BusEvent], int]]:
    """Parse ``events.jsonl``, tolerating a torn tail.

    Spans every sealed segment of a rotated bus (oldest first) plus the
    active file, and mirrors the journal's longest-valid-prefix rule:
    in the newest segment parsing stops at the first line that fails to
    decode (a crash mid-append tears at most the final line) and the
    remainder is *counted*, not raised; sealed segments stay fully
    readable.  With ``with_stats=True`` returns
    ``(events, skipped_lines)``.
    """
    from repro.resources.rotate import read_jsonl_stream

    events, skipped = read_jsonl_stream(
        path,
        lambda line: BusEvent.from_doc(json.loads(line.decode("utf-8"))),
        missing_ok=True,
    )
    if with_stats:
        return events, skipped
    return events


class EventBus:
    """Appends :class:`BusEvent` lines; keeps a bounded recent ring.

    Parameters
    ----------
    path:
        Target ``events.jsonl``; ``None`` keeps events in memory only
        (the ring still feeds the flight recorder).
    ring:
        Recent events retained in memory for ``FlightRecorder`` dumps.
    wall:
        Injectable wall clock (tests pin it).
    budget:
        Rotation budget for ``events.jsonl`` (see
        :class:`repro.resources.StreamBudget`); ``None`` disables
        rotation.
    governor:
        Optional resource governor notified of rotations/shedding.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        ring: int = 2048,
        wall: Callable[[], float] = time.time,
        budget: Optional[Any] = None,
        governor: Optional[Any] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.ring: "deque[BusEvent]" = deque(maxlen=int(ring))
        self.listeners: List[Callable[[BusEvent], None]] = []
        self.events_emitted = 0
        self._wall = wall
        self._writer = None
        self._seq: Optional[int] = None
        if self.path is not None:
            from repro.resources.rotate import RotatingJsonlWriter

            self._writer = RotatingJsonlWriter(
                self.path, budget=budget, governor=governor, stream="events"
            )

    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        if self._seq is None:
            self._seq = 0
            if self.path is not None and self.path.exists():
                # Resume the sequence past the existing file so causal
                # order spans manager incarnations.
                prior, _ = read_events(self.path, with_stats=True)
                if prior:
                    self._seq = prior[-1].seq
        self._seq += 1
        return self._seq

    def emit(self, category: str, kind: str, **attrs: Any) -> BusEvent:
        """Record one incident.

        Correlation ids come from the ambient context; explicit
        keyword arguments named like a correlation field override it
        (the manager knows which job an admission event belongs to
        before any scope is open).
        """
        corr = dict(_context._context)
        for k in _CORR:
            if k in attrs:
                corr[k] = attrs.pop(k)
        event = BusEvent(
            seq=self._next_seq(),
            ts=self._wall(),
            category=category,
            kind=kind,
            correlation=corr,
            attrs=attrs,
        )
        self.ring.append(event)
        self.events_emitted += 1
        for listener in self.listeners:
            listener(event)
        if self._writer is not None:
            self._writer.write_line(event.to_json())
        return event

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()


class _NullBus:
    """Disabled bus: ``emit`` is a no-op (used by ``NULL_HUB``)."""

    __slots__ = ()
    path = None
    ring: "deque[BusEvent]" = deque(maxlen=1)
    events_emitted = 0

    def emit(self, category: str, kind: str, **attrs: Any) -> None:
        return None

    def close(self) -> None:
        pass


NULL_BUS = _NullBus()
