"""Counters, gauges, and fixed-bucket histograms for run-wide metrics.

The :class:`MetricsRegistry` is the single sink for everything the
instrumented hot paths count: GSPMV bytes moved and flops executed,
CG/block-CG iterations and true-residual norms, MRHS chunk
degradations, distributed comm bytes, checkpoint write seconds, and
health verdict counts.  Three properties make it fit the simulation
loop:

* **Labels** — ``registry.counter("gspmv.seconds", m=4)`` keys the
  metric by name plus sorted labels (``"gspmv.seconds{m=4}"``), which
  is how per-``m`` GSPMV aggregates stay separable for the roofline
  report without a cardinality explosion.
* **Snapshot/restore** — the step acceptance controller snapshots the
  registry before each step attempt and restores it when the step is
  rejected, so metrics from rolled-back steps are withdrawn exactly
  like the health monitor's observations.
* **Checkpointable state** — ``to_state``/``load_state`` round-trip
  through the NPZ checkpoint packer, so counters continue
  monotonically across a kill-and-resume boundary.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "WITHDRAWN_KEY",
    "exponential_buckets",
]

#: Self-metric counting observations rolled back by :meth:`restore`.
#: Exempt from the restore itself, so rejected-step accounting is
#: observable instead of being withdrawn along with what it counts.
WITHDRAWN_KEY = "telemetry.withdrawn"


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """Bucket upper bounds ``start * factor**i`` for ``i in range(count)``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default histogram buckets for durations in seconds (1 µs … ~1000 s).
SECONDS_BUCKETS = exponential_buckets(1e-6, 10.0, 10)
#: Default histogram buckets for residual norms (1e-14 … ~100).
RESIDUAL_BUCKETS = exponential_buckets(1e-14, 10.0, 17)


class Counter:
    """A monotonically increasing count (within one accepted timeline;
    step rejection may restore it to an earlier snapshot)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (current dt, current m, buffer depth).

    ``updated_at`` records the wall time of the last :meth:`set` — the
    staleness timestamp the Prometheus exporter attaches to gauge
    samples (0.0 means never explicitly set, no stamp emitted).
    """

    __slots__ = ("value", "updated_at")

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)
        self.updated_at = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated_at = time.time()


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``counts[i]`` counts observations ``<= buckets[i]`` (first matching
    bucket); observations above the last bound land in the overflow
    slot ``counts[-1]``.  ``sum``/``count`` track totals for means.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = SECONDS_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = int(np.searchsorted(self.buckets, value, side="left"))
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullMetric:
    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullMetrics:
    """Disabled registry: every accessor returns a shared no-op metric."""

    __slots__ = ()

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: Any
    ) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> None:
        return None

    def restore(self, snapshot: Any) -> None:
        pass


NULL_METRICS = _NullMetrics()


def _key(name: str, labels: Mapping[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named counters, gauges, and histograms with optional labels."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge()
        return g

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = _key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(
                buckets if buckets is not None else SECONDS_BUCKETS
            )
        return h

    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        c = self._counters.get(_key(name, labels))
        return c.value if c is not None else 0.0

    def counters_matching(self, prefix: str) -> Dict[str, float]:
        """``{key: value}`` for every counter whose key starts with
        ``prefix`` (e.g. ``"gspmv.seconds{"`` for the per-m family)."""
        return {
            k: c.value
            for k, c in self._counters.items()
            if k.startswith(prefix)
        }

    def gauge_stamps(self) -> Dict[str, float]:
        """``{key: last-set wall time}`` for every gauge that has been
        explicitly set (the exporter's staleness timestamps)."""
        return {
            k: g.updated_at for k, g in self._gauges.items() if g.updated_at
        }

    # ------------------------------------------------------------------
    # rejection rollback
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Cheap copy of every metric's value, for step-rejection
        rollback (:meth:`restore`)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {
                k: (list(h.counts), h.sum, h.count)
                for k, h in self._histograms.items()
            },
        }

    def restore(self, snapshot: Mapping[str, Any]) -> int:
        """Restore :meth:`snapshot`: metrics recorded since are withdrawn
        (metrics *created* since are reset to zero, not deleted).

        Returns how many observations were withdrawn — counter/gauge
        updates rolled back plus histogram observations discarded —
        and adds that to the monotonic ``telemetry.withdrawn``
        self-counter, which is itself exempt from the restore so
        rejected-step accounting stays observable.
        """
        withdrawn = 0
        counters = snapshot["counters"]
        for k, c in self._counters.items():
            if k == WITHDRAWN_KEY:
                continue
            target = counters.get(k, 0.0)
            if c.value != target:
                withdrawn += 1
            c.value = target
        gauges = snapshot["gauges"]
        for k, g in self._gauges.items():
            target = gauges.get(k, 0.0)
            if g.value != target:
                withdrawn += 1
            g.value = target
        hists = snapshot["histograms"]
        for k, h in self._histograms.items():
            if k in hists:
                counts, total, count = hists[k]
                withdrawn += max(0, h.count - count)
                h.counts = list(counts)
                h.sum = total
                h.count = count
            else:
                withdrawn += h.count
                h.counts = [0] * (len(h.buckets) + 1)
                h.sum = 0.0
                h.count = 0
        if withdrawn:
            self.counter(WITHDRAWN_KEY).inc(float(withdrawn))
        return withdrawn

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON summary (``metrics.json``, ``repro report``)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                    "mean": h.mean,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def dump_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_state(self) -> Dict[str, Any]:
        """NPZ-checkpoint-friendly state (see ``pack_state``)."""
        hist_names = sorted(self._histograms)
        return {
            "counter_names": sorted(self._counters),
            "counter_values": np.array(
                [self._counters[k].value for k in sorted(self._counters)],
                dtype=np.float64,
            ),
            "gauge_names": sorted(self._gauges),
            "gauge_values": np.array(
                [self._gauges[k].value for k in sorted(self._gauges)],
                dtype=np.float64,
            ),
            "hist_names": hist_names,
            "hist_buckets": [
                np.array(self._histograms[k].buckets, dtype=np.float64)
                for k in hist_names
            ],
            "hist_counts": [
                np.array(self._histograms[k].counts, dtype=np.int64)
                for k in hist_names
            ],
            "hist_sums": np.array(
                [self._histograms[k].sum for k in hist_names], dtype=np.float64
            ),
            "hist_totals": np.array(
                [self._histograms[k].count for k in hist_names], dtype=np.int64
            ),
        }

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Adopt checkpointed values, so a resumed run's counters
        continue from where the killed run's checkpoint left them."""
        for name, value in zip(state["counter_names"], state["counter_values"]):
            self.counter(str(name)).value = float(value)
        for name, value in zip(state["gauge_names"], state["gauge_values"]):
            self.gauge(str(name)).value = float(value)
        for i, name in enumerate(state["hist_names"]):
            h = self.histogram(
                str(name), buckets=[float(b) for b in state["hist_buckets"][i]]
            )
            h.counts = [int(c) for c in state["hist_counts"][i]]
            h.sum = float(state["hist_sums"][i])
            h.count = int(state["hist_totals"][i])
