"""Periodic metrics export: Prometheus text + an append-only stream.

The :class:`MetricsExporter` serializes the live
:class:`~repro.telemetry.metrics.MetricsRegistry` on a cadence:

* ``metrics.prom`` — Prometheus text exposition format, *atomically
  swapped* (written to a temp file in the same directory then
  ``os.replace``\\ d), so a scraper or ``repro top`` never observes a
  partially-written file.  Gauges carry their last-update wall-clock
  timestamp (milliseconds, per the exposition format) so a stale gauge
  is distinguishable from a fresh one.
* ``metrics.jsonl`` — one JSON snapshot line per export, append-only,
  so the *history* of every counter survives (the text file only ever
  shows "now").
* ``metrics.json`` — the same live snapshot ``repro report`` already
  reads, rewritten atomically each export so ``report --watch`` and
  ``jobs --watch`` render mid-run instead of only after close.

Cadence is wall-clock (``interval`` seconds between exports, checked
by cheap :meth:`maybe_export` calls from the step loop) and/or logical
(``tick_every`` :class:`~repro.service.clock.ServiceClock` ticks,
checked by :meth:`tick` from the scheduler loop).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = [
    "MetricsExporter",
    "PROM_FILENAME",
    "STREAM_FILENAME",
    "escape_label_value",
    "parse_prometheus_text",
    "prom_key",
    "prom_name",
    "render_prometheus",
]

PROM_FILENAME = "metrics.prom"
STREAM_FILENAME = "metrics.jsonl"


# ----------------------------------------------------------------------
# exposition format
# ----------------------------------------------------------------------
def prom_name(name: str) -> str:
    """Sanitize a registry metric name (``gspmv.seconds`` →
    ``gspmv_seconds``) to the exposition-format charset."""
    out = []
    for i, ch in enumerate(name):
        if ch.isalnum() and (i > 0 or not ch.isdigit()) or ch in "_:":
            out.append(ch)
        else:
            out.append("_")
    return "".join(out)


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _split_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry key ``name{k=v,...}`` into name + labels."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, inner = key[:-1].split("{", 1)
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        if "=" in part:
            k, v = part.split("=", 1)
            labels[k] = v
    return name, labels


def prom_key(name: str, **labels: Any) -> str:
    """The sample key :func:`parse_prometheus_text` returns for a
    metric: sanitized name plus sorted, quoted, escaped labels."""
    pname = prom_name(name)
    if not labels:
        return pname
    inner = ",".join(
        f'{prom_name(str(k))}="{escape_label_value(str(labels[k]))}"'
        for k in sorted(labels)
    )
    return f"{pname}{{{inner}}}"


def _fmt(value: float) -> str:
    f = float(value)
    return repr(int(f)) if f == int(f) and abs(f) < 1e15 else repr(f)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Gauges carry their last-``set`` wall timestamp in milliseconds
    (the staleness marker); counters and histograms are cumulative so
    they carry none.
    """
    snap = registry.as_dict()
    lines = []
    seen_types: Dict[str, str] = {}

    def header(name: str, mtype: str) -> None:
        if seen_types.get(name) != mtype:
            seen_types[name] = mtype
            lines.append(f"# TYPE {name} {mtype}")

    for key, value in snap["counters"].items():
        name, labels = _split_key(key)
        header(prom_name(name), "counter")
        lines.append(f"{prom_key(name, **labels)} {_fmt(value)}")
    gauge_stamps = getattr(registry, "gauge_stamps", lambda: {})()
    for key, value in snap["gauges"].items():
        name, labels = _split_key(key)
        header(prom_name(name), "gauge")
        stamp = gauge_stamps.get(key, 0.0)
        suffix = f" {int(stamp * 1000)}" if stamp else ""
        lines.append(f"{prom_key(name, **labels)} {_fmt(value)}{suffix}")
    for key, hist in snap["histograms"].items():
        name, labels = _split_key(key)
        pname = prom_name(name)
        header(pname, "histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(
                f"{prom_key(name + '_bucket', le=repr(float(bound)), **labels)}"
                f" {cumulative}"
            )
        lines.append(
            f"{prom_key(name + '_bucket', le='+Inf', **labels)}"
            f" {hist['count']}"
        )
        lines.append(f"{prom_key(name + '_sum', **labels)} {_fmt(hist['sum'])}")
        lines.append(f"{prom_key(name + '_count', **labels)} {hist['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Parse exposition text back for round-trip verification.

    Returns ``{"types": {name: type}, "samples": {key: (value, ts)}}``
    where ``key`` matches :func:`prom_key` output (labels sorted) and
    ``ts`` is the optional sample timestamp in milliseconds (``None``
    when absent — i.e. everything but stamped gauges).
    """
    types: Dict[str, str] = {}
    samples: Dict[str, Tuple[float, Optional[int]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        if "}" in line:
            head, rest = line.rsplit("}", 1)
            name, inner = head.split("{", 1)
            labels: Dict[str, str] = {}
            # Split label pairs on commas outside quotes.
            depth, start, parts = False, 0, []
            for i, ch in enumerate(inner):
                if ch == '"' and (i == 0 or inner[i - 1] != "\\"):
                    depth = not depth
                elif ch == "," and not depth:
                    parts.append(inner[start:i])
                    start = i + 1
            parts.append(inner[start:])
            for part in parts:
                if not part:
                    continue
                k, v = part.split("=", 1)
                labels[k.strip()] = _unescape_label_value(v.strip().strip('"'))
            fields = rest.split()
        else:
            pieces = line.split()
            name, labels, fields = pieces[0], {}, pieces[1:]
        value = float(fields[0])
        ts = int(fields[1]) if len(fields) > 1 else None
        inner_txt = ",".join(
            f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
        )
        key = f"{name}{{{inner_txt}}}" if labels else name
        samples[key] = (value, ts)
    return {"types": types, "samples": samples}


# ----------------------------------------------------------------------
class MetricsExporter:
    """Cadence-driven serializer for one :class:`MetricsRegistry`."""

    def __init__(
        self,
        registry: MetricsRegistry,
        directory: Union[str, Path],
        *,
        interval: float = 1.0,
        tick_every: int = 0,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
        budget: Optional[Any] = None,
        governor: Optional[Any] = None,
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if tick_every < 0:
            raise ValueError("tick_every must be non-negative")
        self.registry = registry
        self.directory = Path(directory)
        self.interval = float(interval)
        self.tick_every = int(tick_every)
        self.exports = 0
        self.exports_shed = 0
        self.governor = governor
        self._clock = clock
        self._wall = wall
        self._last: Optional[float] = None
        self._last_tick: Optional[int] = None
        self._shedding = False
        from repro.resources.rotate import RotatingJsonlWriter

        self._stream = RotatingJsonlWriter(
            self.stream_path,
            budget=budget,
            governor=governor,
            stream="metrics",
        )

    @property
    def prom_path(self) -> Path:
        return self.directory / PROM_FILENAME

    @property
    def stream_path(self) -> Path:
        return self.directory / STREAM_FILENAME

    # ------------------------------------------------------------------
    def maybe_export(self, *, force: bool = False) -> Optional[Path]:
        """Export if ``interval`` seconds have passed (cheap when not:
        one clock read and one compare — this is the per-step call)."""
        now = self._clock()
        if not force and self._last is not None:
            if now - self._last < self.interval:
                return None
        self._last = now
        return self.export()

    def tick(self, now_tick: int) -> Optional[Path]:
        """Logical-clock cadence: export every ``tick_every`` ticks
        (scheduler loop).  No-op when ``tick_every`` is 0."""
        if not self.tick_every:
            return None
        if (
            self._last_tick is not None
            and now_tick - self._last_tick < self.tick_every
        ):
            return None
        self._last_tick = int(now_tick)
        self._last = self._clock()
        return self.export()

    def export(self) -> Path:
        """Unconditional export of all three artifacts."""
        # Imported here, not at module top: repro.io pulls in the repro
        # package root, which circularly imports telemetry at init.
        from repro.io import atomic_write_text

        self.exports += 1
        self.registry.counter("telemetry.exports").value = float(self.exports)
        self.directory.mkdir(parents=True, exist_ok=True)
        wall = self._wall()
        try:
            atomic_write_text(
                self.prom_path, render_prometheus(self.registry), fsync=False
            )
            atomic_write_text(
                self.directory / "metrics.json",
                self.registry.dump_json() + "\n",
                fsync=False,
            )
        except OSError as exc:
            # Telemetry is the junior class: an unwritable disk drops
            # this export (counted) instead of raising into the run.
            self.exports_shed += 1
            self.registry.counter("telemetry.shed", stream="metrics").inc()
            if not self._shedding:
                self._shedding = True
                if self.governor is not None:
                    self.governor.note_stream_shed(
                        "metrics", self.prom_path, exc
                    )
            return self.prom_path
        if self._shedding:
            self._shedding = False
            if self.governor is not None:
                self.governor.note_stream_recovered("metrics")
        line = json.dumps(
            {"export": self.exports, "ts": wall, **self.registry.as_dict()},
            sort_keys=True,
        )
        self._stream.write_line(line)
        return self.prom_path

    def close(self) -> None:
        self._stream.close()
