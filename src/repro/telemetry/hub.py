"""The :class:`TelemetryHub` bundles one tracer + one metrics registry.

Drivers accept ``telemetry=hub``; a hub bound to a directory writes
``trace.jsonl`` (append-only span log) and ``metrics.json`` (metrics
summary, rewritten on every flush).  ``NULL_HUB`` is the disabled
instance drivers hold by default — every operation on it is a no-op,
so call sites never need a ``None`` check on the driver attribute.

The *global* enable/disable switch for module-level instrumentation
(the GSPMV/SPMV/solver hot paths, which have no driver to hang an
attribute on) lives in :mod:`repro.telemetry` as ``active_hub``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

from .metrics import NULL_METRICS, MetricsRegistry, _NullMetrics
from .tracer import NULL_TRACER, JsonlSink, NullTracer, Tracer

__all__ = ["TelemetryHub", "NULL_HUB"]

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"

# Bytes per scalar / index in the BCRS kernels (matches perfmodel).
_SX = 8  # double-precision vector element
_SA = 8  # double-precision matrix element
_SI = 4  # 32-bit block index


def gspmv_bytes(nb: int, nnzb: int, b: int, m: int) -> int:
    """Minimum memory traffic of one GSPMV at width ``m`` (Eq. 6 of the
    paper with cache-miss factor ``k = 0`` — the cheap lower bound used
    for live accounting; the roofline report recomputes with the LRU
    ``k`` estimate offline)."""
    return int(
        m * nb * b * 3 * _SX  # stream x once, y read+write
        + nb * _SI  # row pointers
        + nnzb * (_SI + b * b * _SA)  # block indices + block values
    )


def gspmv_flops(nnzb: int, b: int, m: int) -> int:
    """Useful flops of one GSPMV: 2 per (matrix element, column)."""
    return int(2 * nnzb * b * b * m)


class TelemetryHub:
    """One tracer + one metrics registry + an optional output directory."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        buffer_size: int = 512,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        if tracer is not None:
            self.tracer = tracer
        elif self.directory is not None:
            self.tracer = Tracer(
                JsonlSink(self.directory / TRACE_FILENAME),
                buffer_size=buffer_size,
            )
        else:
            self.tracer = Tracer(buffer_size=buffer_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Hot-path caches: resolved counter tuples per kernel key, and
        # the one in-flight aggregate of consecutive same-key calls.
        self._kcache: dict = {}
        self._pending: Optional[list] = None

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # hot-path helper: one call records span + bytes/flops counters
    # ------------------------------------------------------------------
    def record_gspmv(
        self,
        kind: str,
        duration: float,
        nb: int,
        nnzb: int,
        b: int,
        m: int,
        backend: str = "",
    ) -> None:
        """Record one generalized SPMV: per-m aggregate counters plus a
        ``kind`` span event (``"gspmv"``/``"spmv"``).

        A solver iteration issues thousands of kernel calls, so the
        span side aggregates: consecutive calls with the same structure
        under the same parent span fold into one event carrying a
        ``calls`` count (the tree view and roofline report un-fold it).
        Counters still advance per call — they sit inside the step's
        snapshot/restore window and must track the accepted timeline.
        """
        key = (kind, m, nb, nnzb, b, backend)
        cached = self._kcache.get(key)
        if cached is None:
            mx = self.metrics
            # Label the counter family by engine so per-engine totals
            # survive into metrics.json (the roofline report and the
            # auto-selection validation both group by it).
            labels = {"m": m, "engine": backend} if backend else {"m": m}
            cached = (
                mx.counter(f"{kind}.calls", **labels),
                mx.counter(f"{kind}.seconds", **labels),
                mx.counter(f"{kind}.bytes", **labels),
                mx.counter(f"{kind}.flops", **labels),
                float(gspmv_bytes(nb, nnzb, b, m)),
                float(gspmv_flops(nnzb, b, m)),
            )
            self._kcache[key] = cached
        # Bump counter values directly (all increments are nonnegative
        # by construction) — this path runs per kernel call.
        cached[0].value += 1.0
        cached[1].value += duration
        cached[2].value += cached[4]
        cached[3].value += cached[5]

        tr = self.tracer
        stack = tr._stack
        pkey = (stack[-1].span_id if stack else None, key)
        pending = self._pending
        if pending is not None and pending[0] == pkey:
            pending[1] += 1
            pending[2] += duration
        else:
            if pending is not None:
                self._flush_pending()
            self._pending = [pkey, 1, duration, tr.clock() - duration]

    def _flush_pending(self) -> None:
        """Emit the in-flight kernel aggregate as one span event."""
        pending, self._pending = self._pending, None
        if pending is None:
            return
        (parent_id, key), count, total, start = pending
        kind, m, nb, nnzb, b, backend = key
        attrs = {"nb": nb, "nnzb": nnzb, "b": b, "m": m, "backend": backend}
        if count > 1:
            attrs["calls"] = count
        self.tracer.emit(
            kind, start=start, duration=total, parent_id=parent_id, **attrs
        )

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain the tracer to disk and rewrite ``metrics.json``."""
        self._flush_pending()
        self.tracer.drain()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / METRICS_FILENAME
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(self.metrics.dump_json() + "\n", encoding="utf-8")
            tmp.replace(path)

    def close(self, **attrs: Any) -> None:
        """Force-close any spans still open (aborted run), flush, and
        release the trace file handle."""
        self.tracer.close_open(**attrs)
        self.flush()
        sink = self.tracer.sink
        if isinstance(sink, JsonlSink):
            sink.close()


class _NullHub:
    """Disabled hub: no-op tracer, no-op metrics, no files."""

    __slots__ = ()
    directory = None
    tracer: NullTracer = NULL_TRACER
    metrics: _NullMetrics = NULL_METRICS
    enabled = False

    def record_gspmv(self, kind: str, duration: float, **kw: Any) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self, **attrs: Any) -> None:
        pass


NULL_HUB = _NullHub()
