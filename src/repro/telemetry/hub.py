"""The :class:`TelemetryHub` bundles one tracer + one metrics registry.

Drivers accept ``telemetry=hub``; a hub bound to a directory writes
``trace.jsonl`` (append-only span log) and ``metrics.json`` (metrics
summary, rewritten on every flush).  ``NULL_HUB`` is the disabled
instance drivers hold by default — every operation on it is a no-op,
so call sites never need a ``None`` check on the driver attribute.

The *global* enable/disable switch for module-level instrumentation
(the GSPMV/SPMV/solver hot paths, which have no driver to hang an
attribute on) lives in :mod:`repro.telemetry` as ``active_hub``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Union

from .events import EVENTS_FILENAME, NULL_BUS, EventBus
from .exporter import MetricsExporter
from .metrics import NULL_METRICS, MetricsRegistry, _NullMetrics
from .recorder import FlightRecorder
from .tracer import NULL_TRACER, JsonlSink, NullTracer, Tracer

__all__ = ["TelemetryHub", "NULL_HUB"]

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"

# Bytes per scalar / index in the BCRS kernels (matches perfmodel).
_SX = 8  # double-precision vector element
_SA = 8  # double-precision matrix element
_SI = 4  # 32-bit block index


def gspmv_bytes(nb: int, nnzb: int, b: int, m: int) -> int:
    """Minimum memory traffic of one GSPMV at width ``m`` (Eq. 6 of the
    paper with cache-miss factor ``k = 0`` — the cheap lower bound used
    for live accounting; the roofline report recomputes with the LRU
    ``k`` estimate offline)."""
    return int(
        m * nb * b * 3 * _SX  # stream x once, y read+write
        + nb * _SI  # row pointers
        + nnzb * (_SI + b * b * _SA)  # block indices + block values
    )


def gspmv_flops(nnzb: int, b: int, m: int) -> int:
    """Useful flops of one GSPMV: 2 per (matrix element, column)."""
    return int(2 * nnzb * b * b * m)


class TelemetryHub:
    """One tracer + one metrics registry + an optional output directory."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        buffer_size: int = 512,
        export_interval: float = 1.0,
        flight_ring: int = 2048,
        stream_budget: Optional[Any] = "default",
        spill_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        # Resource governance: every hub bound to a directory carries a
        # governor, and every append-only stream it creates is budget-
        # rotated by default.  ``stream_budget=None`` disables rotation.
        if stream_budget == "default":
            from repro.resources.rotate import DEFAULT_STREAM_BUDGET

            stream_budget = DEFAULT_STREAM_BUDGET
        self.stream_budget = stream_budget
        if self.directory is not None:
            from repro.resources.governor import ResourceGovernor

            self.governor: Optional[ResourceGovernor] = ResourceGovernor(
                self.directory,
                stream_budget=stream_budget,
                spill_dir=spill_dir,
            )
        else:
            self.governor = None
        if tracer is not None:
            self.tracer = tracer
        elif self.directory is not None:
            self.tracer = Tracer(
                JsonlSink(
                    self.directory / TRACE_FILENAME,
                    budget=stream_budget,
                    governor=self.governor,
                ),
                buffer_size=buffer_size,
            )
        else:
            self.tracer = Tracer(buffer_size=buffer_size)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Live observability plane: the unified event bus, the bounded
        # flight-recorder rings, and the cadence-driven exporter.  The
        # recorder tees the tracer's sink (spans keep flowing to the
        # JSONL file) and listens on the bus; without a directory the
        # bus stays in-memory and the exporter is absent.
        self.recorder = FlightRecorder(
            span_ring=flight_ring, event_ring=flight_ring
        )
        self.events = EventBus(
            self.directory / EVENTS_FILENAME
            if self.directory is not None
            else None,
            budget=stream_budget,
            governor=self.governor,
        )
        self.events.listeners.append(self.recorder.note_event)
        sink = self.tracer.sink
        if sink is not None:
            recorder = self.recorder

            def _tee(events, _sink=sink, _rec=recorder):
                _rec.note_spans(events)
                _sink(events)

            self.tracer.sink = _tee
            self._sink = sink
        else:
            self._sink = None
        self.exporter: Optional[MetricsExporter] = (
            MetricsExporter(
                self.metrics,
                self.directory,
                interval=export_interval,
                budget=stream_budget,
                governor=self.governor,
            )
            if self.directory is not None
            else None
        )
        if self.governor is not None:
            # Late binding: the governor could not take the hub in its
            # constructor (it is created first), and the hub's own
            # streams must exist before shed/rotation events can flow.
            self.governor.bind_hub(self)
        # Hot-path caches: resolved counter tuples per kernel key, and
        # the one in-flight aggregate of consecutive same-key calls.
        self._kcache: dict = {}
        self._pending: Optional[list] = None

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # hot-path helper: one call records span + bytes/flops counters
    # ------------------------------------------------------------------
    def record_gspmv(
        self,
        kind: str,
        duration: float,
        nb: int,
        nnzb: int,
        b: int,
        m: int,
        backend: str = "",
    ) -> None:
        """Record one generalized SPMV: per-m aggregate counters plus a
        ``kind`` span event (``"gspmv"``/``"spmv"``).

        A solver iteration issues thousands of kernel calls, so the
        span side aggregates: consecutive calls with the same structure
        under the same parent span fold into one event carrying a
        ``calls`` count (the tree view and roofline report un-fold it).
        Counters still advance per call — they sit inside the step's
        snapshot/restore window and must track the accepted timeline.
        """
        key = (kind, m, nb, nnzb, b, backend)
        cached = self._kcache.get(key)
        if cached is None:
            mx = self.metrics
            # Label the counter family by engine so per-engine totals
            # survive into metrics.json (the roofline report and the
            # auto-selection validation both group by it).
            labels = {"m": m, "engine": backend} if backend else {"m": m}
            cached = (
                mx.counter(f"{kind}.calls", **labels),
                mx.counter(f"{kind}.seconds", **labels),
                mx.counter(f"{kind}.bytes", **labels),
                mx.counter(f"{kind}.flops", **labels),
                float(gspmv_bytes(nb, nnzb, b, m)),
                float(gspmv_flops(nnzb, b, m)),
            )
            self._kcache[key] = cached
        # Bump counter values directly (all increments are nonnegative
        # by construction) — this path runs per kernel call.
        cached[0].value += 1.0
        cached[1].value += duration
        cached[2].value += cached[4]
        cached[3].value += cached[5]

        tr = self.tracer
        stack = tr._stack
        pkey = (stack[-1].span_id if stack else None, key)
        pending = self._pending
        if pending is not None and pending[0] == pkey:
            pending[1] += 1
            pending[2] += duration
        else:
            if pending is not None:
                self._flush_pending()
            self._pending = [pkey, 1, duration, tr.clock() - duration]

    def _flush_pending(self) -> None:
        """Emit the in-flight kernel aggregate as one span event."""
        pending, self._pending = self._pending, None
        if pending is None:
            return
        (parent_id, key), count, total, start = pending
        kind, m, nb, nnzb, b, backend = key
        attrs = {"nb": nb, "nnzb": nnzb, "b": b, "m": m, "backend": backend}
        if count > 1:
            attrs["calls"] = count
        self.tracer.emit(
            kind, start=start, duration=total, parent_id=parent_id, **attrs
        )

    # ------------------------------------------------------------------
    # the live observability plane
    # ------------------------------------------------------------------
    def emit_event(self, category: str, kind: str, **attrs: Any) -> Any:
        """Publish one incident on the unified event bus (stamped with
        the current correlation ids; see :mod:`repro.telemetry.events`)."""
        return self.events.emit(category, kind, **attrs)

    def pulse(self, tick: Optional[int] = None) -> None:
        """Cadence heartbeat from the step/scheduler loops: give the
        exporter a chance to export (cheap when the interval has not
        elapsed).  ``tick`` additionally drives the logical cadence."""
        exporter = self.exporter
        if exporter is None:
            return
        if tick is not None and exporter.tick_every:
            exporter.tick(tick)
        else:
            exporter.maybe_export()

    def dump_flight(self, reason: str, **extra: Any) -> Optional[Path]:
        """Write the flight-recorder post-mortem bundle (FATAL/crash).

        Flushes pending spans first so the rings hold the freshest
        tail.  Returns ``None`` for a directory-less hub.
        """
        if self.directory is None:
            return None
        self._flush_pending()
        self.tracer.drain()  # the teed sink feeds the recorder's ring
        try:
            return self.recorder.dump(
                self.directory,
                reason=reason,
                metrics=self.metrics,
                extra=extra,
            )
        except OSError as exc:
            # Flight bundles are class 1: droppable under pressure, but
            # always noted — a post-mortem silently missing its bundle
            # would otherwise look like a recorder bug.
            if self.governor is not None:
                self.governor.note_flight_shed(reason, exc)
            return None

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain the tracer to disk and rewrite ``metrics.json``."""
        self._flush_pending()
        self.tracer.drain()
        if self.directory is not None:
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                path = self.directory / METRICS_FILENAME
                tmp = path.with_suffix(".json.tmp")
                tmp.write_text(
                    self.metrics.dump_json() + "\n", encoding="utf-8"
                )
                tmp.replace(path)
            except OSError:
                # Junior class: a full disk costs this snapshot, not
                # the run (the exporter counts its own sheds).
                self.metrics.counter("telemetry.shed", stream="metrics").inc()

    def close(self, **attrs: Any) -> None:
        """Force-close any spans still open (aborted run), flush — with
        one final export so ``metrics.prom`` reflects the run's end —
        and release the trace/event file handles."""
        self.tracer.close_open(**attrs)
        self.flush()
        if self.exporter is not None:
            self.exporter.maybe_export(force=True)
            self.exporter.close()
        self.events.close()
        if isinstance(self._sink, JsonlSink):
            self._sink.close()


class _NullHub:
    """Disabled hub: no-op tracer, no-op metrics, no files."""

    __slots__ = ()
    directory = None
    tracer: NullTracer = NULL_TRACER
    metrics: _NullMetrics = NULL_METRICS
    events = NULL_BUS
    exporter = None
    recorder = None
    governor = None
    enabled = False

    def record_gspmv(self, kind: str, duration: float, **kw: Any) -> None:
        pass

    def emit_event(self, category: str, kind: str, **attrs: Any) -> None:
        pass

    def pulse(self, tick: Optional[int] = None) -> None:
        pass

    def dump_flight(self, reason: str, **extra: Any) -> None:
        return None

    def flush(self) -> None:
        pass

    def close(self, **attrs: Any) -> None:
        pass


NULL_HUB = _NullHub()
