"""Cross-layer correlation context: ``job_id`` → ``run_id`` → ``chunk/step``.

One in-process (single-threaded, like the rest of the runtime) mapping
of correlation ids, propagated *implicitly*: the :class:`JobManager`
opens a :func:`scope` naming the job before dispatching a slice, the
:class:`~repro.resilience.runner.ResilientRunner` ensures a ``run_id``
and :func:`annotate`\\ s the live ``chunk``/``step``, and both the span
tracer and the event bus stamp whatever is current onto everything
they emit.  The result: a single ``job_id`` grep over ``events.jsonl``
(or ``trace.jsonl``) reconstructs one job's full causal story —
admission, dispatches, preemptions, resumes, checkpoints, kernel
spans, engine quarantines — without any call site threading ids
through a dozen signatures.

Propagation rules (DESIGN.md §16):

* ``scope(**ids)`` saves the whole context and restores it on exit, so
  a slice's ids can never leak into the next job's events;
* ``annotate(**ids)`` mutates in place — used for the fast-moving
  ``chunk``/``step`` fields *inside* a scope, which rolls them back;
* explicit keyword ids passed to an emit site always win over the
  ambient context (the manager knows best which job an event is for).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator

__all__ = [
    "CORRELATION_FIELDS",
    "annotate",
    "correlation",
    "next_run_id",
    "scope",
]

#: The correlation triple (plus tenant) in stamp order.
CORRELATION_FIELDS = ("job_id", "tenant", "run_id", "chunk", "step")

#: The live context.  Read directly (not copied) by the tracer's span
#: hot path; treat as read-only outside this module.
_context: Dict[str, Any] = {}

_run_counter = 0


def correlation() -> Dict[str, Any]:
    """A copy of the current correlation ids (empty when none set)."""
    return dict(_context)


def annotate(**ids: Any) -> None:
    """Update fields in place (``chunk``/``step`` as the run advances).

    Outside any :func:`scope` the annotation is still applied — solo
    (non-service) runs stamp their spans too — and cleared by the next
    ``scope`` exit above it, if any.
    """
    _context.update(ids)


@contextmanager
def scope(**ids: Any) -> Iterator[Dict[str, Any]]:
    """Install ``ids`` for the duration of the block.

    The *entire* context is saved and restored, so annotations made
    inside the block (``step``, ``chunk``) are rolled back with it.
    ``None`` values are skipped rather than stamped.
    """
    saved = dict(_context)
    _context.update({k: v for k, v in ids.items() if v is not None})
    try:
        yield _context
    finally:
        _context.clear()
        _context.update(saved)


def next_run_id(prefix: str = "run") -> str:
    """A fresh process-unique run id (``run-1``, ``run-2``, …)."""
    global _run_counter
    _run_counter += 1
    return f"{prefix}-{_run_counter}"
