"""Hierarchical span tracing with a bounded buffer and JSONL sink.

A *span* is one timed region of the run — a chunk, a step, a paper
phase, a single GSPMV — with a name, key/value attributes, and a
monotonic start/duration.  Spans nest: the tracer keeps a stack of open
spans, and a span started while another is open records that span as
its parent, so ``repro trace`` can rebuild the chunk → step → phase →
kernel tree of an MRHS run.

Completed spans land in a bounded in-memory buffer that drains to a
:class:`JsonlSink` (one JSON object per line, append-only so a resumed
run extends the same trace).  Without a sink the buffer keeps the most
recent ``buffer_size`` events and counts what it dropped — tracing
never grows without bound and never raises into the simulation.

:class:`NullTracer` is the disabled implementation: every method is a
no-op returning shared singletons, so an uninstrumented run pays one
attribute lookup and one no-op call per span site.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .context import _context as _corr

__all__ = [
    "SpanEvent",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "read_trace",
]


@dataclass(frozen=True)
class SpanEvent:
    """One completed span, as it appears in the trace log."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    """Seconds on the tracer's monotonic clock (not wall time)."""
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start": self.start,
                "duration": self.duration,
                "attrs": self.attrs,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "SpanEvent":
        doc = json.loads(line)
        return cls(
            name=str(doc["name"]),
            span_id=int(doc["span_id"]),
            parent_id=(
                None if doc["parent_id"] is None else int(doc["parent_id"])
            ),
            start=float(doc["start"]),
            duration=float(doc["duration"]),
            attrs=dict(doc.get("attrs", {})),
        )


class Span:
    """An *open* span; closed by :meth:`end` (or the tracer's context
    manager).  Mutating :attr:`attrs` before the end is how call sites
    attach results (iteration counts, convergence flags) to the span."""

    __slots__ = ("name", "span_id", "parent_id", "start", "attrs", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.attrs = attrs

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> None:
        self._tracer.end(self, **attrs)


class _NullSpan:
    """Shared no-op span (and context manager)."""

    __slots__ = ()
    name = ""
    span_id = -1
    parent_id = None
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    __slots__ = ()
    open_spans = 0
    events_dropped = 0

    def start(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def end(self, span: Any, **attrs: Any) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def record(self, name: str, duration: float, **attrs: Any) -> None:
        pass

    def drain(self) -> List[SpanEvent]:
        return []

    def close_open(self, **attrs: Any) -> int:
        return 0


NULL_TRACER = NullTracer()


class JsonlSink:
    """Appends span events to a (rotated) ``.jsonl`` stream.

    Opened lazily and in append mode, so a resumed run extends the
    trace of the run it continues instead of truncating it.  Backed by
    :class:`repro.resources.RotatingJsonlWriter`: the active file is
    sealed and rotated at the ``budget``'s segment size (``None``
    disables rotation), and an unwritable disk sheds lines to an
    in-memory ring instead of raising into the simulation.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        budget: Optional[Any] = None,
        governor: Optional[Any] = None,
    ) -> None:
        from repro.resources.rotate import RotatingJsonlWriter

        self.path = Path(path)
        self._writer = RotatingJsonlWriter(
            self.path, budget=budget, governor=governor, stream="trace"
        )

    def __call__(self, events: Sequence[SpanEvent]) -> None:
        self._writer.write_lines(e.to_json() for e in events)

    def close(self) -> None:
        self._writer.close()


def read_trace(
    path: Union[str, Path], *, with_stats: bool = False
) -> Union[List[SpanEvent], Tuple[List[SpanEvent], int]]:
    """Parse a JSONL trace file back into :class:`SpanEvent` objects.

    Spans every sealed segment of a rotated trace (oldest first) plus
    the active file.  Tolerates a torn tail (crash mid-append),
    mirroring the job journal's longest-valid-prefix rule: in the
    *newest* segment parsing stops at the first line that fails to
    decode and the remaining lines are *counted* instead of raised;
    sealed segments stay fully readable.  With ``with_stats=True`` the
    return value is ``(events, skipped_lines)``.
    """
    from repro.resources.rotate import read_jsonl_stream

    events, skipped = read_jsonl_stream(
        path,
        lambda line: SpanEvent.from_json(line.decode("utf-8")),
        missing_ok=False,
    )
    if with_stats:
        return events, skipped
    return events


class Tracer:
    """Span tracer with parent/child nesting and a bounded buffer.

    Parameters
    ----------
    sink:
        Callable receiving batches of completed :class:`SpanEvent`
        (e.g. a :class:`JsonlSink`).  ``None`` keeps events in memory.
    buffer_size:
        Completed spans buffered before draining to the sink; without a
        sink, the buffer keeps only the newest ``buffer_size`` events
        (the overflow is counted in :attr:`events_dropped`).
    clock:
        Monotonic clock; ``time.perf_counter`` by default.
    """

    def __init__(
        self,
        sink: Optional[Callable[[Sequence[SpanEvent]], None]] = None,
        *,
        buffer_size: int = 512,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        self.sink = sink
        self.buffer_size = int(buffer_size)
        self.clock = clock
        self._stack: List[Span] = []
        self._buffer: List[SpanEvent] = []
        self._next_id = 0
        self.events_emitted = 0
        self.events_dropped = 0

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Number of currently open (started, unended) spans."""
        return len(self._stack)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span; its parent is the currently innermost open span.

        The ambient correlation ids (job/run/chunk/step, when a scope
        is active) are stamped under the span's attrs — explicit attrs
        win on a key clash."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1].span_id if self._stack else None
        merged = {**_corr, **attrs} if _corr else dict(attrs)
        span = Span(self, name, span_id, parent, self.clock(), merged)
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> None:
        """Close ``span`` (and, defensively, anything opened under it
        that was left open — such strays are marked ``leaked=True``)."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return
        try:
            idx = self._stack.index(span)
        except ValueError:
            return  # already ended (double end is a no-op)
        end_t = self.clock()
        # Close deeper strays first so the log stays child-before-parent.
        for stray in reversed(self._stack[idx + 1 :]):
            stray.attrs["leaked"] = True
            self._emit(stray, end_t)
        if attrs:
            span.attrs.update(attrs)
        self._emit(span, end_t)
        del self._stack[idx:]

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("1st solve"):`` — the common form.

        An exception inside the block still closes the span, recording
        the exception type under the ``error`` attribute.
        """
        s = self.start(name, **attrs)
        try:
            yield s
        except BaseException as exc:
            s.attrs["error"] = type(exc).__name__
            self.end(s)
            raise
        else:
            self.end(s)

    def record(self, name: str, duration: float, **attrs: Any) -> None:
        """Emit an already-measured span (hot-path form: no context
        manager, one event; parented to the innermost open span)."""
        now = self.clock()
        self.emit(
            name,
            start=now - duration,
            duration=duration,
            parent_id=self._stack[-1].span_id if self._stack else None,
            **attrs,
        )

    def emit(
        self,
        name: str,
        *,
        start: float,
        duration: float,
        parent_id: Optional[int],
        **attrs: Any,
    ) -> None:
        """Emit a completed span with an explicit parent — the form the
        hub's aggregated kernel events use, where the parent phase may
        already have closed by the time the aggregate is flushed."""
        span_id = self._next_id
        self._next_id += 1
        self._buffer.append(
            SpanEvent(
                name=name,
                span_id=span_id,
                parent_id=parent_id,
                start=start,
                duration=duration,
                attrs={**_corr, **attrs} if _corr else dict(attrs),
            )
        )
        self.events_emitted += 1
        if len(self._buffer) >= self.buffer_size:
            self._overflow()

    def close_open(self, **attrs: Any) -> int:
        """Force-close every open span (run aborted); returns how many."""
        closed = 0
        while self._stack:
            span = self._stack[-1]
            span.attrs.update(attrs)
            self.end(span)
            closed += 1
        return closed

    # ------------------------------------------------------------------
    def _emit(self, span: Span, end_t: float) -> None:
        self._buffer.append(
            SpanEvent(
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                start=span.start,
                duration=max(0.0, end_t - span.start),
                attrs=span.attrs,
            )
        )
        self.events_emitted += 1
        if len(self._buffer) >= self.buffer_size:
            self._overflow()

    def _overflow(self) -> None:
        if self.sink is not None:
            self.drain()
        else:
            # Keep the newest events; count the evicted.
            excess = len(self._buffer) - self.buffer_size + 1
            if excess > 0:
                del self._buffer[:excess]
                self.events_dropped += excess

    def drain(self) -> List[SpanEvent]:
        """Flush buffered events to the sink (or return them without one)."""
        events, self._buffer = self._buffer, []
        if events and self.sink is not None:
            self.sink(events)
        return events

    @property
    def buffered(self) -> List[SpanEvent]:
        """Events currently buffered in memory (newest last)."""
        return list(self._buffer)
