"""Flight recorder: bounded rings of recent spans/events, dumped on
FATAL/crash as a self-contained post-mortem bundle.

The recorder passively tees two streams — completed spans on their way
from the tracer to ``trace.jsonl``, and bus events as they are emitted
— into bounded :class:`~collections.deque` rings.  It costs one append
per span batch / event while armed, nothing more.  When a run dies
(``ResilienceExhausted``, ``SimulationKilled``, ``ManagerKilled``, a
FATAL health verdict escalating to an abort), :meth:`dump` writes a
bundle directory::

    <telemetry-dir>/flight/<NNN>-<reason>/
        MANIFEST.json     reason, wall time, counts, correlation ids
        spans.jsonl       the newest spans (same schema as trace.jsonl)
        events.jsonl      the newest bus events (same schema)
        metrics.json      full metrics snapshot at the moment of death

so a post-mortem needs nothing but the bundle — the causal tail that
led to the crash, already correlated by job/run/step ids.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from . import context as _context
from .events import BusEvent
from .tracer import SpanEvent

__all__ = ["FlightRecorder", "MANIFEST_FILENAME"]

MANIFEST_FILENAME = "MANIFEST.json"


def _slug(reason: str) -> str:
    out = "".join(ch if ch.isalnum() or ch in "-_" else "-" for ch in reason)
    return out.strip("-")[:48] or "crash"


class FlightRecorder:
    """Bounded in-memory tail of the run, dumpable as a bundle.

    Bundles are class-1 artifacts: only the newest ``keep`` survive
    (older bundles are pruned after each dump), and under disk pressure
    the governor may evict them entirely to protect checkpoints and the
    journal.
    """

    def __init__(
        self,
        *,
        span_ring: int = 2048,
        event_ring: int = 2048,
        keep: int = 8,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.spans: "deque[SpanEvent]" = deque(maxlen=int(span_ring))
        self.events: "deque[BusEvent]" = deque(maxlen=int(event_ring))
        self.keep = int(keep)
        self.dumps = 0

    # -- tee targets ---------------------------------------------------
    def note_spans(self, events: Sequence[SpanEvent]) -> None:
        self.spans.extend(events)

    def note_event(self, event: BusEvent) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    def dump(
        self,
        directory: Union[str, Path],
        *,
        reason: str,
        metrics: Optional[Any] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write one post-mortem bundle under ``<directory>/flight/``.

        ``metrics`` is an optional :class:`MetricsRegistry` whose full
        snapshot rides along; ``extra`` merges into the manifest.

        Raises :class:`OSError` when the disk cannot take the bundle
        (including via the ``io.*`` fault sites) — the hub catches it
        and records a ``flight_shed`` instead of crashing the crash
        handler.
        """
        from repro.resources.iofaults import check_io_faults

        self.dumps += 1
        flight = Path(directory) / "flight"
        bundle = flight / f"{self.dumps:03d}-{_slug(reason)}"
        check_io_faults(bundle, writer="flight_dump")
        bundle.mkdir(parents=True, exist_ok=True)
        (bundle / "spans.jsonl").write_text(
            "".join(e.to_json() + "\n" for e in self.spans), encoding="utf-8"
        )
        (bundle / "events.jsonl").write_text(
            "".join(e.to_json() + "\n" for e in self.events), encoding="utf-8"
        )
        if metrics is not None:
            (bundle / "metrics.json").write_text(
                metrics.dump_json() + "\n", encoding="utf-8"
            )
        manifest: Dict[str, Any] = {
            "reason": reason,
            "created": time.time(),
            "spans": len(self.spans),
            "events": len(self.events),
            "correlation": _context.correlation(),
        }
        if extra:
            manifest.update(extra)
        (bundle / MANIFEST_FILENAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self._prune(flight, spare=bundle)
        return bundle

    def _prune(self, flight: Path, *, spare: Path) -> None:
        """Keep only the newest ``keep`` bundles (name-ordered: the dump
        counter prefixes names, so lexical order is dump order)."""
        bundles = sorted(d for d in flight.iterdir() if d.is_dir())
        for old in bundles[: max(0, len(bundles) - self.keep)]:
            if old == spare:
                continue
            for f in sorted(old.rglob("*"), reverse=True):
                try:
                    f.unlink() if f.is_file() else f.rmdir()
                except OSError:
                    pass
            try:
                old.rmdir()
            except OSError:
                pass
