"""Measured-vs-model reports built from recorded traces.

:class:`RooflineReport` reproduces the paper's Section IV.B validation
from a live run: every ``gspmv``/``spmv`` span in the trace carries the
matrix structure (``nb``, ``nnzb``, ``b``) and vector count ``m``, so
the report can group measurements per ``m``, evaluate the
:mod:`repro.perfmodel` prediction ``T(m) = max(Tbw(m), Tcomp(m))`` for
the same structure on a chosen :class:`MachineSpec`, and flag rows
whose measured mean deviates from the model by more than a threshold
(default 25%).

The module also renders the ``repro trace`` view: the parent/child span
tree and per-phase wall-time totals (the Tables VI/VII breakdown).

Kept out of ``repro.telemetry``'s eager imports: this module pulls in
:mod:`repro.perfmodel`, which the instrumented kernels must not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perfmodel.engines import EngineProfile

from repro.perfmodel.machine import (
    SANDY_BRIDGE,
    WESTMERE,
    MachineSpec,
    host_machine,
)
from repro.perfmodel.roofline import (
    MatrixShape,
    time_bandwidth,
    time_compute,
)
from repro.telemetry.hub import METRICS_FILENAME, TRACE_FILENAME
from repro.telemetry.tracer import SpanEvent, read_trace

__all__ = [
    "RooflineRow",
    "RooflineReport",
    "resolve_machine",
    "build_tree",
    "render_trace_tree",
    "phase_totals",
    "render_phase_totals",
    "load_run_metrics",
    "render_failover_table",
    "render_engine_table",
    "render_jobs_table",
    "render_top",
]

#: Span names treated as generalized SPMV measurements.
KERNEL_SPAN_NAMES = ("gspmv", "spmv")


def resolve_machine(name: str) -> MachineSpec:
    """Map a CLI ``--machine`` value to a :class:`MachineSpec`."""
    table = {"wsm": WESTMERE, "westmere": WESTMERE, "snb": SANDY_BRIDGE, "sandybridge": SANDY_BRIDGE}
    key = name.strip().lower()
    if key in table:
        return table[key]
    if key == "host":
        return host_machine(quick=True)
    raise ValueError(f"unknown machine {name!r}; expected wsm, snb, or host")


@dataclass(frozen=True)
class RooflineRow:
    """One measured-vs-model line of the report."""

    kind: str
    m: int
    calls: int
    measured_mean: float
    """Mean measured seconds per call at this m."""
    predicted: float
    """Model ``T(m) = max(Tbw, Tcomp)`` for the same structure."""
    tbw: float
    tcomp: float
    deviation: float
    """``measured/predicted - 1`` (signed fraction)."""
    flagged: bool
    """True when ``|deviation|`` exceeds the report threshold."""
    bound: str
    """``"bw"`` or ``"comp"`` — which term the model says dominates."""
    engine: str = ""
    """Kernel engine that produced the measurements ("" when the span
    predates engine labelling)."""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "m": self.m,
            "calls": self.calls,
            "measured_mean_s": self.measured_mean,
            "predicted_s": self.predicted,
            "tbw_s": self.tbw,
            "tcomp_s": self.tcomp,
            "deviation": self.deviation,
            "flagged": self.flagged,
            "bound": self.bound,
        }


class RooflineReport:
    """Measured GSPMV/SPMV timings joined against the perfmodel."""

    def __init__(
        self,
        rows: Sequence[RooflineRow],
        machine: MachineSpec,
        *,
        threshold: float = 0.25,
    ) -> None:
        self.rows = sorted(rows, key=lambda r: (r.kind, r.engine, r.m))
        self.machine = machine
        self.threshold = threshold

    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[SpanEvent],
        machine: MachineSpec,
        *,
        threshold: float = 0.25,
        k: float = 0.0,
        profiles: Optional[Dict[str, "EngineProfile"]] = None,
    ) -> "RooflineReport":
        """Join kernel spans against the model.

        Spans are grouped by ``(name, engine, m, nb, nnzb, b)``; each
        group becomes one row comparing the measured mean against
        ``time_gspmv`` for the same structure (cache-miss factor ``k``,
        default 0 — the lower-bound model the live counters also use).
        An aggregated kernel span (``calls`` attribute) contributes its
        total duration weighted by its call count.

        ``profiles`` optionally maps engine names to calibrated
        :class:`~repro.perfmodel.engines.EngineProfile` objects; rows
        whose engine has one are predicted with the engine-scaled model
        instead of the machine-peak bound, which is how the
        auto-selection is validated (measured must fall *within* the
        threshold, not merely get flagged).
        """
        groups: Dict[Tuple[str, str, int, int, int, int], List[float]] = {}
        for ev in events:
            if ev.name not in KERNEL_SPAN_NAMES:
                continue
            a = ev.attrs
            try:
                key = (
                    ev.name,
                    str(a.get("backend", "")),
                    int(a["m"]),
                    int(a["nb"]),
                    int(a["nnzb"]),
                    int(a["b"]),
                )
            except (KeyError, TypeError, ValueError):
                continue  # span predates instrumentation or is foreign
            total, calls = groups.setdefault(key, [0.0, 0])
            groups[key] = [
                total + ev.duration, calls + int(a.get("calls", 1))
            ]

        rows: List[RooflineRow] = []
        for (kind, engine, m, nb, nnzb, b), (total, calls) in groups.items():
            shape = MatrixShape(
                nb=nb, blocks_per_row=nnzb / nb, block_size=b
            )
            profile = (profiles or {}).get(engine)
            if profile is not None:
                tbw = profile.time_bandwidth(shape, m, machine, k)
                tcomp = profile.time_compute(shape, m, machine)
            else:
                tbw = time_bandwidth(shape, m, machine, k)
                tcomp = time_compute(shape, m, machine)
            predicted = max(tbw, tcomp)
            measured = total / calls
            deviation = measured / predicted - 1.0 if predicted > 0 else 0.0
            rows.append(
                RooflineRow(
                    kind=kind,
                    m=m,
                    calls=calls,
                    measured_mean=measured,
                    predicted=predicted,
                    tbw=tbw,
                    tcomp=tcomp,
                    deviation=deviation,
                    flagged=abs(deviation) > threshold,
                    bound="bw" if tbw >= tcomp else "comp",
                    engine=engine,
                )
            )
        return cls(rows, machine, threshold=threshold)

    @classmethod
    def from_run(
        cls,
        run_dir: Union[str, Path],
        machine: MachineSpec,
        *,
        threshold: float = 0.25,
        k: float = 0.0,
        profiles: Optional[Dict[str, "EngineProfile"]] = None,
    ) -> "RooflineReport":
        """Build the report from a telemetry directory's ``trace.jsonl``."""
        trace = Path(run_dir) / TRACE_FILENAME
        if not trace.exists():
            raise FileNotFoundError(f"no {TRACE_FILENAME} in {run_dir}")
        return cls.from_events(
            read_trace(trace), machine,
            threshold=threshold, k=k, profiles=profiles,
        )

    # ------------------------------------------------------------------
    @property
    def ms(self) -> List[int]:
        return sorted({r.m for r in self.rows})

    @property
    def flagged_rows(self) -> List[RooflineRow]:
        return [r for r in self.rows if r.flagged]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine.name,
            "threshold": self.threshold,
            "rows": [r.as_dict() for r in self.rows],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        lines = [
            f"Roofline: measured vs model ({self.machine.name}, "
            f"flag > {self.threshold:.0%})",
            "",
            "| kernel | engine | m | calls | measured (s) | model (s) "
            "| Tbw (s) | Tcomp (s) | bound | dev | flag |",
            "|---|---|---|---|---|---|---|---|---|---|---|",
        ]
        for r in self.rows:
            lines.append(
                f"| {r.kind} | {r.engine or '-'} | {r.m} | {r.calls} "
                f"| {r.measured_mean:.3e} "
                f"| {r.predicted:.3e} | {r.tbw:.3e} | {r.tcomp:.3e} "
                f"| {r.bound} | {r.deviation:+.1%} "
                f"| {'**>**' if r.flagged else ''} |"
            )
        if not self.rows:
            lines.append("| (no kernel spans in trace) | | | | | | | | | | |")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# `repro trace` rendering: span tree + phase totals
# ----------------------------------------------------------------------
def build_tree(
    events: Sequence[SpanEvent],
) -> Tuple[List[SpanEvent], Dict[int, List[SpanEvent]]]:
    """Return ``(roots, children)`` ordered by start time.

    Events whose parent is missing from the trace (dropped by the
    bounded buffer, or from before a resume boundary) are treated as
    roots so nothing disappears from the view.
    """
    by_id = {ev.span_id: ev for ev in events}
    roots: List[SpanEvent] = []
    children: Dict[int, List[SpanEvent]] = {}
    for ev in events:
        if ev.parent_id is not None and ev.parent_id in by_id:
            children.setdefault(ev.parent_id, []).append(ev)
        else:
            roots.append(ev)
    roots.sort(key=lambda e: e.start)
    for kids in children.values():
        kids.sort(key=lambda e: e.start)
    return roots, children


def render_trace_tree(
    events: Sequence[SpanEvent],
    *,
    max_depth: Optional[int] = None,
    collapse: Tuple[str, ...] = KERNEL_SPAN_NAMES,
) -> str:
    """ASCII span tree; runs of ``collapse``-named siblings fold into
    one ``name xN`` line (a chunk can contain thousands of kernel
    calls; the hub pre-aggregates consecutive ones into events carrying
    a ``calls`` count, which folds the same way)."""
    roots, children = build_tree(events)
    out: List[str] = []

    def visit(ev: SpanEvent, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        indent = "  " * depth
        attrs = {
            k: v
            for k, v in ev.attrs.items()
            if k in ("m", "step", "chunk", "error", "converged", "iterations")
        }
        suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs
            else ""
        )
        out.append(f"{indent}{ev.name}  {ev.duration * 1e3:.3f} ms{suffix}")
        kids = children.get(ev.span_id, [])
        i = 0
        while i < len(kids):
            kid = kids[i]
            if kid.name in collapse:
                j = i
                total = 0.0
                n = 0
                while j < len(kids) and kids[j].name == kid.name:
                    total += kids[j].duration
                    n += int(kids[j].attrs.get("calls", 1))
                    j += 1
                if n > 1:
                    out.append(
                        f"{'  ' * (depth + 1)}{kid.name} x{n}  "
                        f"{total * 1e3:.3f} ms total"
                    )
                    i = j
                    continue
            visit(kid, depth + 1)
            i += 1

    for root in roots:
        visit(root, 0)
    return "\n".join(out)


def phase_totals(events: Sequence[SpanEvent]) -> Dict[str, Tuple[int, float]]:
    """``{span name: (count, total seconds)}`` over the whole trace —
    the per-phase breakdown of Tables VI/VII.  Aggregated kernel events
    count as their ``calls`` attribute."""
    totals: Dict[str, Tuple[int, float]] = {}
    for ev in events:
        n, t = totals.get(ev.name, (0, 0.0))
        totals[ev.name] = (
            n + int(ev.attrs.get("calls", 1)), t + ev.duration
        )
    return totals


def render_phase_totals(events: Sequence[SpanEvent]) -> str:
    totals = phase_totals(events)
    order = sorted(totals.items(), key=lambda kv: -kv[1][1])
    width = max((len(name) for name in totals), default=4)
    lines = [f"{'phase':<{width}}  {'count':>7}  {'total (s)':>12}  {'mean (ms)':>12}"]
    for name, (count, total) in order:
        lines.append(
            f"{name:<{width}}  {count:>7}  {total:>12.4f}  "
            f"{total / count * 1e3:>12.4f}"
        )
    return "\n".join(lines)


def load_run_metrics(run_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Read ``metrics.json`` from a telemetry directory, if present."""
    path = Path(run_dir) / METRICS_FILENAME
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# distributed fault-tolerance failover table
# ----------------------------------------------------------------------
_FAILOVER_COUNTERS = (
    ("dist.timeouts", "halo receives timed out"),
    ("dist.retries", "resend rounds"),
    ("dist.stragglers", "stragglers (late but delivered)"),
    ("dist.corrupt_blocks", "corrupt boundary blocks"),
    ("dist.repair_rounds", "repair rounds"),
    ("comm.repairs", "blocks repaired"),
    ("dist.rank_failures", "ranks declared failed"),
    ("recovery.events", "rank recoveries"),
    ("recovery.ranks_lost", "ranks lost"),
    ("recovery.rehomed_rows", "block rows re-homed"),
    ("recovery.replayed_steps", "steps replayed"),
)


def render_failover_table(
    metrics: Optional[Dict[str, Any]], *, markdown: bool = False
) -> Optional[str]:
    """The failover table: what the distributed fault machinery did.

    Joins the ``dist.*`` / ``recovery.*`` counters (and the
    ``recovery.seconds`` histogram) recorded by the reliable halo
    exchange and the rank-recovery protocol into one table.  Returns
    ``None`` when the run recorded none of them — single-node runs get
    no empty section.
    """
    if not metrics:
        return None
    counters = metrics.get("counters", {})

    def total(name: str) -> float:
        return sum(
            v
            for k, v in counters.items()
            if k == name or k.startswith(name + "{")
        )

    rows = [
        (name, label, total(name))
        for name, label in _FAILOVER_COUNTERS
        if total(name) > 0
    ]
    rec = metrics.get("histograms", {}).get("recovery.seconds")
    if not rows and not rec:
        return None
    lines: List[str] = []
    if markdown:
        lines.append("| counter | event | total |")
        lines.append("|---|---|---:|")
        for name, label, value in rows:
            lines.append(f"| `{name}` | {label} | {value:g} |")
    else:
        lines.append("failover table:")
        width = max((len(label) for _, label, _ in rows), default=0)
        for name, label, value in rows:
            lines.append(f"  {label:<{width}}  {value:g}  [{name}]")
    if rec and rec.get("count"):
        lines.append(
            ("" if markdown else "  ")
            + f"mean recovery time: {rec['mean']:.3g}s over "
            f"{rec['count']} recovery(ies)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# engine watchdog table
# ----------------------------------------------------------------------
def render_engine_table(
    metrics: Optional[Dict[str, Any]], *, markdown: bool = False
) -> Optional[str]:
    """The engine-events table: what the kernel watchdog did.

    Joins the ``engine.events{engine=...,kind=...}`` counters recorded
    by :class:`~repro.sparse.enginewatch.EngineWatch` (demotions,
    miscompares, quarantines, cache recoveries) with the shadow
    verification totals.  Returns ``None`` when the run recorded
    neither — healthy unverified runs get no empty section.
    """
    if not metrics:
        return None
    counters = metrics.get("counters", {})
    rows: List[Tuple[str, str, float]] = []
    for key, value in sorted(counters.items()):
        if not key.startswith("engine.events{") or value <= 0:
            continue
        labels = dict(
            part.split("=", 1)
            for part in key[len("engine.events{"):-1].split(",")
            if "=" in part
        )
        rows.append(
            (labels.get("engine", "?"), labels.get("kind", "?"), value)
        )
    verify_calls = sum(
        v for k, v in counters.items()
        if k == "engine.verify.calls" or k.startswith("engine.verify.calls{")
    )
    verify_failures = sum(
        v for k, v in counters.items()
        if k == "engine.verify.failures"
        or k.startswith("engine.verify.failures{")
    )
    verify_seconds = counters.get("engine.verify.seconds", 0.0)
    if not rows and not verify_calls:
        return None
    lines: List[str] = []
    if markdown:
        lines.append("| engine | event | count |")
        lines.append("|---|---|---:|")
        for engine, kind, value in rows:
            lines.append(f"| `{engine}` | {kind} | {value:g} |")
    else:
        lines.append("engine events:")
        width = max(
            (len(f"{engine}: {kind}") for engine, kind, _ in rows), default=0
        )
        for engine, kind, value in rows:
            label = f"{engine}: {kind}"
            lines.append(f"  {label:<{width}}  {value:g}")
    if verify_calls:
        lines.append(
            ("" if markdown else "  ")
            + f"shadow checks: {verify_calls:g} "
            f"({verify_failures:g} failed, {verify_seconds:.3g}s total)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# job-service table
# ----------------------------------------------------------------------
_JOB_COLUMNS = (
    ("job", "job"),
    ("name", "name"),
    ("tenant", "tenant"),
    ("state", "state"),
    ("priority", "prio"),
    ("steps", "steps"),
    ("wait", "wait"),
    ("attempts", "attempts"),
    ("preemptions", "preempt"),
    ("digest", "digest"),
    ("reason", "reason"),
)


def render_jobs_table(
    rows: Sequence[Dict[str, Any]], *, markdown: bool = False
) -> Optional[str]:
    """The job-service table: one line per submitted job.

    ``rows`` is :meth:`repro.service.manager.JobManager.table` output
    (live or rebuilt read-only from the journal by the ``jobs`` CLI).
    Returns ``None`` for an empty table.
    """
    if not rows:
        return None

    def cell(row: Dict[str, Any], key: str) -> str:
        value = row.get(key)
        return "-" if value in (None, "") else str(value)

    lines: List[str] = []
    if markdown:
        lines.append("| " + " | ".join(h for _, h in _JOB_COLUMNS) + " |")
        lines.append("|" + "|".join("---" for _ in _JOB_COLUMNS) + "|")
        for row in rows:
            lines.append(
                "| " + " | ".join(cell(row, k) for k, _ in _JOB_COLUMNS) + " |"
            )
    else:
        widths = {
            key: max(
                len(header), max(len(cell(r, key)) for r in rows)
            )
            for key, header in _JOB_COLUMNS
        }
        lines.append(
            "  ".join(h.ljust(widths[k]) for k, h in _JOB_COLUMNS).rstrip()
        )
        for row in rows:
            lines.append(
                "  ".join(
                    cell(row, k).ljust(widths[k]) for k, _ in _JOB_COLUMNS
                ).rstrip()
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------
def _by_label(
    family: Dict[str, float], name: str, label: str
) -> Dict[str, float]:
    """``{label value: sample}`` for one metric family, e.g. the
    per-state ``service.queue_depth`` gauges."""
    from repro.telemetry.exporter import _split_key

    out: Dict[str, float] = {}
    for key, value in family.items():
        base, labels = _split_key(key)
        if base == name and label in labels:
            out[labels[label]] = float(value)
    return out


def render_top(
    metrics: Optional[Dict[str, Any]],
    events: Optional[Sequence[Any]] = None,
    *,
    tail: int = 8,
    title: str = "",
) -> str:
    """One ``repro top`` frame from the exporter's latest snapshot.

    ``metrics`` is the ``metrics.json`` document (or the last
    ``metrics.jsonl`` line); ``events`` the newest
    :class:`~repro.telemetry.events.BusEvent` records.  Pure renderer —
    the CLI owns file reading and the refresh loop.
    """
    from repro.telemetry.exporter import _split_key

    lines: List[str] = [f"repro top — {title}" if title else "repro top"]
    if not metrics:
        lines.append("  (no exporter snapshot yet)")
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
    else:
        counters = metrics.get("counters", {})
        gauges = metrics.get("gauges", {})
    depths = _by_label(gauges, "service.queue_depth", "state")
    if depths:
        lines.append(
            "  queue: "
            + "  ".join(f"{s}={int(v)}" for s, v in sorted(depths.items()))
        )
    # Per-tenant throughput and SLO burn.
    tenants: Dict[str, Dict[str, float]] = {}
    for key, value in counters.items():
        base, labels = _split_key(key)
        if base == "service.tenant_jobs" and "tenant" in labels:
            row = tenants.setdefault(labels["tenant"], {})
            row[labels.get("state", "?")] = row.get(
                labels.get("state", "?"), 0.0
            ) + float(value)
    for tenant, burn in _by_label(gauges, "slo.burn_rate", "tenant").items():
        tenants.setdefault(tenant, {})["burn"] = burn
    for tenant in sorted(tenants):
        row = tenants[tenant]
        done = int(row.get("done", 0))
        failed = int(row.get("failed", 0))
        burn = row.get("burn")
        text = f"  tenant {tenant}: done={done} failed={failed}"
        if burn is not None:
            text += f" slo_burn={burn:.2f}"
            if burn > 1.0:
                text += " (BURNING)"
        lines.append(text)
    # Engine trouble (demotions / miscompares / quarantines).
    engine = _by_label(counters, "engine.events", "kind")
    if engine:
        lines.append(
            "  engine: "
            + "  ".join(f"{k}={int(v)}" for k, v in sorted(engine.items()))
        )
    steps = counters.get("steps.completed")
    if steps is not None:
        lines.append(f"  steps completed: {int(steps)}")
    exports = counters.get("telemetry.exports")
    withdrawn = counters.get("telemetry.withdrawn")
    heartbeat = []
    if exports is not None:
        heartbeat.append(f"exports={int(exports)}")
    if withdrawn:
        heartbeat.append(f"withdrawn={int(withdrawn)}")
    if heartbeat:
        lines.append("  exporter: " + "  ".join(heartbeat))
    if events:
        lines.append(f"  last {min(tail, len(events))} event(s):")
        for ev in list(events)[-tail:]:
            corr = " ".join(
                f"{k}={v}"
                for k, v in sorted(ev.correlation.items())
                if v is not None
            )
            attrs = " ".join(
                f"{k}={v}" for k, v in sorted(ev.attrs.items())
            )
            text = f"    #{ev.seq} {ev.category}/{ev.kind}"
            if corr:
                text += f" [{corr}]"
            if attrs:
                text += f" {attrs}"
            lines.append(text[:120])
    return "\n".join(lines)
