"""The health monitor: scheduled checks and the ring-buffer report.

:class:`HealthMonitor` owns a set of invariant checks, each with a
cadence, and a :class:`HealthReport` — a bounded ring buffer of
:class:`~repro.health.invariants.InvariantResult` with cumulative
severity counters that survive ring eviction.  The monitor never raises
and never mutates the simulation: drivers call ``observe_step`` /
``observe_block`` after the fact, and the acceptance layer reads the
verdicts to decide whether the step stands.

The report serializes to the same NPZ-friendly state-tree the
checkpoint layer packs (:func:`repro.resilience.checkpoint.pack_state`),
so a resilient run's checkpoints carry the health history alongside the
trajectory and ``repro health`` can post-mortem a dead run.
"""

from __future__ import annotations

import logging
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

import repro.telemetry as _telemetry
from repro.health.invariants import (
    HealthContext,
    InvariantCheck,
    InvariantResult,
    Severity,
    default_checks,
)
from repro.util.validation import check_finite

__all__ = ["HealthMonitor", "HealthReport"]

logger = logging.getLogger(__name__)

CheckLike = Union[InvariantCheck, "tuple[InvariantCheck, int]"]


class HealthReport:
    """Ring buffer of check results plus run-cumulative counters.

    The ring keeps the most recent ``maxlen`` results (enough for a
    post-mortem); the counters keep run totals so long campaigns still
    know how many warnings scrolled out of the window.
    """

    def __init__(self, maxlen: int = 512) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = int(maxlen)
        self._ring: Deque[InvariantResult] = deque(maxlen=self.maxlen)
        self.counts: Dict[Severity, int] = {s: 0 for s in Severity}
        self.rollbacks = 0
        """How many results were withdrawn by step rejections."""

    # ------------------------------------------------------------------
    def add(self, result: InvariantResult) -> None:
        self._ring.append(result)
        self.counts[result.severity] += 1
        hub = _telemetry.active_hub
        if hub is not None:
            severity = result.severity.name.lower()
            # Recorded inside the step's metrics-snapshot window, so a
            # rejected step withdraws its verdict counts with the rest.
            hub.metrics.counter("health.verdicts", severity=severity).inc()
            if severity != "ok":
                # Non-OK verdicts also land on the unified event bus,
                # correlated with whatever job/run/step is live.
                hub.emit_event(
                    "health",
                    severity,
                    check=result.check,
                    message=result.message[:160],
                    step=result.step_index,
                )

    @property
    def results(self) -> List[InvariantResult]:
        """Ring contents, oldest first."""
        return list(self._ring)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def worst(self) -> Severity:
        """Worst severity ever recorded (counters, not just the ring)."""
        for sev in (Severity.FATAL, Severity.WARN):
            if self.counts[sev]:
                return sev
        return Severity.OK

    def fatal_events(self) -> List[InvariantResult]:
        """Fatal results still in the ring, oldest first."""
        return [r for r in self._ring if r.severity is Severity.FATAL]

    def results_for(self, step_index: int) -> List[InvariantResult]:
        return [r for r in self._ring if r.step_index == step_index]

    def fatal_for(self, step_index: int) -> Optional[InvariantResult]:
        """The first fatal result recorded at ``step_index``, if any."""
        for r in self._ring:
            if r.step_index == step_index and r.severity is Severity.FATAL:
                return r
        return None

    def drop_since(self, step_index: int) -> int:
        """Withdraw results at or after ``step_index`` (step rollback)."""
        kept = [r for r in self._ring if r.step_index < step_index]
        dropped = len(self._ring) - len(kept)
        if dropped:
            for r in self._ring:
                if r.step_index >= step_index:
                    self.counts[r.severity] -= 1
            self._ring = deque(kept, maxlen=self.maxlen)
            self.rollbacks += dropped
        return dropped

    def summary(self) -> str:
        text = (
            f"health: {self.total} checks "
            f"(ok={self.counts[Severity.OK]}, "
            f"warn={self.counts[Severity.WARN]}, "
            f"fatal={self.counts[Severity.FATAL]}), "
            f"worst={self.worst().name}"
        )
        if self.rollbacks:
            text += f", {self.rollbacks} withdrawn by step rejections"
        return text

    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Any]:
        """Checkpoint-packable representation (see ``pack_state``)."""
        results = list(self._ring)
        return {
            "maxlen": self.maxlen,
            "rollbacks": self.rollbacks,
            "counts": {s.name: self.counts[s] for s in Severity},
            "step": np.array([r.step_index for r in results], dtype=np.int64),
            "severity": np.array(
                [int(r.severity) for r in results], dtype=np.int64
            ),
            "value": np.array([r.value for r in results], dtype=np.float64),
            "check": [r.check for r in results],
            "message": [r.message for r in results],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "HealthReport":
        report = cls(maxlen=int(state["maxlen"]))
        for i in range(len(state["step"])):
            report._ring.append(
                InvariantResult(
                    check=str(state["check"][i]),
                    severity=Severity(int(state["severity"][i])),
                    message=str(state["message"][i]),
                    value=float(state["value"][i]),
                    step_index=int(state["step"][i]),
                )
            )
        report.counts = {
            s: int(state["counts"][s.name]) for s in Severity
        }
        report.rollbacks = int(state["rollbacks"])
        return report


class HealthMonitor:
    """Runs invariant checks on a cadence and records their verdicts.

    Parameters
    ----------
    checks:
        Invariant checks, or ``(check, cadence)`` pairs to override a
        check's own default cadence.  Defaults to
        :func:`~repro.health.invariants.default_checks`.
    history:
        Ring-buffer size of the :class:`HealthReport`.
    """

    def __init__(
        self,
        checks: Optional[Sequence[CheckLike]] = None,
        *,
        history: int = 512,
    ) -> None:
        raw: Iterable[CheckLike] = (
            default_checks() if checks is None else checks
        )
        self.schedules: List[tuple[InvariantCheck, int]] = []
        for item in raw:
            if isinstance(item, tuple):
                check, cadence = item
            else:
                check, cadence = item, item.cadence
            if cadence < 1:
                raise ValueError("cadence must be >= 1")
            self.schedules.append((check, int(cadence)))
        self.report = HealthReport(maxlen=history)

    # ------------------------------------------------------------------
    def observe_step(self, ctx: HealthContext) -> List[InvariantResult]:
        """Run the step's due checks; record and return their results.

        A fatal ``finite-state`` verdict short-circuits the remaining
        checks — their math (neighbor search, eigenvalues, variances)
        assumes finite input.
        """
        results: List[InvariantResult] = []
        for check, cadence in self.schedules:
            if ctx.step_index % cadence != 0:
                continue
            result = check.check(ctx)
            results.append(result)
            self.report.add(result)
            if result.severity is Severity.FATAL:
                logger.warning(
                    "step %d: invariant '%s' fatal: %s",
                    ctx.step_index, result.check, result.message,
                )
                if result.check == "finite-state":
                    break
            elif result.severity is Severity.WARN:
                logger.info(
                    "step %d: invariant '%s' warn: %s",
                    ctx.step_index, result.check, result.message,
                )
        return results

    def observe_block(
        self,
        *,
        chunk_index: int,
        step_index: int,
        U: np.ndarray,
        converged: bool,
    ) -> List[InvariantResult]:
        """Health of an MRHS auxiliary block solve's guess matrix.

        Non-finite guesses are fatal — CG seeded with a NaN column can
        never recover, so every later step of the chunk would be
        poisoned.
        """
        results: List[InvariantResult] = []
        try:
            check_finite(f"chunk {chunk_index} block-solve guesses", U)
        except ValueError as exc:
            results.append(
                InvariantResult(
                    check="block-guesses",
                    severity=Severity.FATAL,
                    message=str(exc),
                    value=float((~np.isfinite(np.asarray(U))).sum()),
                    step_index=step_index,
                )
            )
        else:
            if not converged:
                results.append(
                    InvariantResult(
                        check="block-guesses",
                        severity=Severity.WARN,
                        message=(
                            f"chunk {chunk_index} block solve did not "
                            f"converge; guesses are partial"
                        ),
                        step_index=step_index,
                    )
                )
            else:
                results.append(
                    InvariantResult(
                        check="block-guesses",
                        severity=Severity.OK,
                        step_index=step_index,
                    )
                )
        for result in results:
            self.report.add(result)
            if result.severity is Severity.FATAL:
                logger.warning(
                    "chunk %d: invariant '%s' fatal: %s",
                    chunk_index, result.check, result.message,
                )
        return results

    def observe_external(
        self,
        *,
        check: str,
        severity: Severity,
        message: str,
        step_index: int = -1,
    ) -> InvariantResult:
        """Record a verdict originating outside the physics checks.

        The kernel watchdog (engine demotions, miscompares,
        quarantines) and the service's SLO tracker (sustained per-tenant
        burn-rate violations) both route their WARN/FATAL verdicts here
        so operational trouble shows up in the same report — and the
        same checkpointed history — as the physics invariants.
        """
        result = InvariantResult(
            check=check,
            severity=severity,
            message=message,
            step_index=step_index,
        )
        self.report.add(result)
        if severity is Severity.FATAL:
            logger.warning(
                "step %d: external verdict '%s' fatal: %s",
                step_index, check, message,
            )
        return result

    def observe_engine(
        self,
        *,
        check: str,
        severity: Severity,
        message: str,
        step_index: int = -1,
    ) -> InvariantResult:
        """Engine-tier alias of :meth:`observe_external` (kept for the
        :class:`~repro.sparse.enginewatch.EngineWatch` call sites)."""
        return self.observe_external(
            check=check,
            severity=severity,
            message=message,
            step_index=step_index,
        )

    # ------------------------------------------------------------------
    def fatal_for(self, step_index: int) -> Optional[InvariantResult]:
        return self.report.fatal_for(step_index)

    def rollback(self, step_index: int) -> None:
        """Withdraw everything observed at or after ``step_index``.

        Called by the acceptance layer when a step is rejected: the
        rolled-back state never happened, so neither did its
        observations (stateful checks drop their window entries too).
        """
        self.report.drop_since(step_index)
        for check, _ in self.schedules:
            check.drop_since(step_index)

    def reset(self) -> None:
        self.report = HealthReport(maxlen=self.report.maxlen)
        for check, _ in self.schedules:
            check.reset()
