"""Numerical health: invariant monitors and step acceptance.

The layer between "the solver converged" (solvers, PR 1) and "the
process survived" (resilience, PR 2): watches the *physics* of the
simulation state, grades violations (ok/warn/fatal), and lets the
acceptance controller reject bad steps, back off ``dt``, or quarantine
a poisoned MRHS chunk.  See DESIGN.md §10.
"""

from repro.health.acceptance import (
    StepAcceptanceController,
    StepOutcome,
    violation_traced_to_guess,
)
from repro.health.invariants import (
    BoxEscapeCheck,
    FiniteStateCheck,
    FluctuationDissipationCheck,
    HealthContext,
    InvariantCheck,
    InvariantResult,
    OverlapCheck,
    Severity,
    SpectrumCheck,
    default_checks,
    deepest_relative_overlap,
)
from repro.health.monitor import HealthMonitor, HealthReport

__all__ = [
    "Severity",
    "InvariantResult",
    "HealthContext",
    "InvariantCheck",
    "FiniteStateCheck",
    "BoxEscapeCheck",
    "OverlapCheck",
    "SpectrumCheck",
    "FluctuationDissipationCheck",
    "default_checks",
    "deepest_relative_overlap",
    "HealthMonitor",
    "HealthReport",
    "StepAcceptanceController",
    "StepOutcome",
    "violation_traced_to_guess",
]
