"""Cheap, composable invariant checks on the *simulation state*.

The solver layer (PR 1) certifies "the linear system converged" and the
resilience layer (PR 2) certifies "the process survived" — neither
certifies "the physics is still valid".  These checks close that gap:
each one watches an invariant the discretized Stokesian dynamics must
satisfy, costs a small fraction of a CG solve, and reports a graded
verdict instead of raising, so the acceptance controller (not the
check) decides what to do about a violation.

Catalogue (DESIGN.md §10):

``finite-state``
    Positions, velocities, forces, and guesses contain no NaN/inf.
    Runs first; a non-finite state short-circuits the later checks,
    whose math assumes finite input.
``box-escape``
    Positions lie inside ``[0, box)``.  The drivers always store
    wrapped positions, so an escaped particle means in-memory or
    checkpoint corruption, never legitimate dynamics.
``overlap``
    No sphere pair overlaps beyond a relative tolerance.  Overlap
    makes the lubrication resistance unphysical (negative gaps) and is
    the classic failure of an over-aggressive ``dt``.
``spectrum``
    SPD sanity of the resistance matrix: every diagonal block must be
    symmetric positive-definite (a cheap necessary condition for SPD),
    and the cached Lanczos spectrum bounds — the ones the Chebyshev
    generator already computes — must stay positive with a bounded
    condition estimate.
``fluctuation-dissipation``
    Sliding-window drift monitor comparing the realized Brownian
    displacement variance against the fluctuation–dissipation target
    ``2*kT*dt*R^{-1}``.  Its sharpest statistic is the *truncation
    ratio* — realized vs solver-intended displacement — which exposes
    the overlap-safety limiter silently destroying Brownian variance
    when ``dt`` is far too large (the "finite but wrong" trajectory no
    other check can see).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.sparse.bcrs import BCRSMatrix
from repro.stokesian.neighbors import neighbor_pairs
from repro.stokesian.particles import ParticleSystem
from repro.util.validation import check_finite

__all__ = [
    "Severity",
    "InvariantResult",
    "HealthContext",
    "InvariantCheck",
    "FiniteStateCheck",
    "BoxEscapeCheck",
    "OverlapCheck",
    "SpectrumCheck",
    "FluctuationDissipationCheck",
    "default_checks",
    "deepest_relative_overlap",
]


class Severity(IntEnum):
    """Graded verdict of one invariant check."""

    OK = 0
    WARN = 1
    FATAL = 2


@dataclass(frozen=True)
class InvariantResult:
    """One check's verdict at one step."""

    check: str
    severity: Severity
    message: str = ""
    value: float = 0.0
    """The check's scalar observable (overlap depth, truncation ratio,
    minimum eigenvalue, ...); 0.0 when not applicable."""
    step_index: int = -1


@dataclass
class HealthContext:
    """Everything a check may look at after one time step.

    The driver fills what it has; every field except ``system`` is
    optional and checks degrade gracefully (a check whose inputs are
    missing reports OK with a "not observed" message rather than
    guessing).
    """

    step_index: int
    system: ParticleSystem
    dt: float = 1.0
    kT: float = 1.0
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    """Named flat arrays from the step: ``velocity``, ``brownian-force``,
    ``displacement``, ``guess`` — whichever exist."""
    bounds: Optional[Tuple[float, float]] = None
    """Cached Lanczos spectrum bounds of the resistance matrix."""
    R: Optional[BCRSMatrix] = None
    """The step's resistance matrix (for SPD sanity)."""
    final_scale: float = 1.0
    """Overlap-safety scaling applied to the step's displacement."""


def deepest_relative_overlap(system: ParticleSystem) -> float:
    """Deepest pair overlap relative to the mean radius (0 when none)."""
    nl = neighbor_pairs(system, max_gap=0.0)
    if nl.n_pairs == 0:
        return 0.0
    overlap = (system.radii[nl.i] + system.radii[nl.j]) - nl.dist
    deepest = float(overlap.max())
    if deepest <= 0.0:
        return 0.0
    return deepest / float(np.mean(system.radii))


class InvariantCheck:
    """Base class: a named check with a default cadence.

    Subclasses implement :meth:`check`; stateful checks additionally
    implement :meth:`drop_since` so a rejected (rolled-back) step's
    observation can be withdrawn, and :meth:`reset`.
    """

    name: str = "invariant"
    cadence: int = 1
    """Run every this many steps (the monitor applies it)."""

    def check(self, ctx: HealthContext) -> InvariantResult:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated state (fresh run)."""

    def drop_since(self, step_index: int) -> None:
        """Withdraw observations at or after ``step_index`` (rollback)."""

    def _result(
        self,
        ctx: HealthContext,
        severity: Severity,
        message: str = "",
        value: float = 0.0,
    ) -> InvariantResult:
        return InvariantResult(
            check=self.name,
            severity=severity,
            message=message,
            value=float(value),
            step_index=ctx.step_index,
        )


class FiniteStateCheck(InvariantCheck):
    """Positions and every provided step array are finite."""

    name = "finite-state"

    def check(self, ctx: HealthContext) -> InvariantResult:
        fields = [("positions", ctx.system.positions)]
        fields.extend(ctx.arrays.items())
        for label, arr in fields:
            try:
                check_finite(label, arr)
            except ValueError as exc:
                bad = int((~np.isfinite(np.asarray(arr))).sum())
                return self._result(
                    ctx, Severity.FATAL, str(exc), value=float(bad)
                )
        return self._result(ctx, Severity.OK)


class BoxEscapeCheck(InvariantCheck):
    """Positions lie inside ``[0, box)`` (wrapped storage invariant)."""

    name = "box-escape"

    def check(self, ctx: HealthContext) -> InvariantResult:
        pos, box = ctx.system.positions, ctx.system.box
        slack = 1e-12 * box
        escaped = (pos < -slack) | (pos >= box + slack)
        if escaped.any():
            count = int(escaped.any(axis=1).sum())
            first = int(np.flatnonzero(escaped.any(axis=1))[0])
            return self._result(
                ctx,
                Severity.FATAL,
                f"{count} particles outside the periodic box "
                f"(first: particle {first}) — state corruption, positions "
                f"are stored wrapped",
                value=float(count),
            )
        return self._result(ctx, Severity.OK)


class OverlapCheck(InvariantCheck):
    """No sphere pair overlaps beyond ``rel_tol * mean_radius``."""

    name = "overlap"

    def __init__(self, rel_tol: float = 1e-9, cadence: int = 8) -> None:
        if rel_tol < 0:
            raise ValueError("rel_tol must be non-negative")
        self.rel_tol = float(rel_tol)
        # The pair scan costs ~a neighbor search; the default cadence
        # keeps the whole catalogue under the 2%-of-step budget.  The
        # acceptance controller still diagnoses overlap on every failed
        # step independently of this cadence.
        self.cadence = int(cadence)

    def check(self, ctx: HealthContext) -> InvariantResult:
        deepest = deepest_relative_overlap(ctx.system)
        if deepest > self.rel_tol:
            return self._result(
                ctx,
                Severity.FATAL,
                f"particle pair overlaps by {deepest:.3e} of the mean "
                f"radius (tolerance {self.rel_tol:.1e})",
                value=deepest,
            )
        if deepest > 0.0:
            return self._result(
                ctx,
                Severity.WARN,
                f"marginal overlap of {deepest:.3e} of the mean radius",
                value=deepest,
            )
        return self._result(ctx, Severity.OK)


class SpectrumCheck(InvariantCheck):
    """SPD/spectrum sanity of the resistance matrix.

    Diagonal-block positive-definiteness is a cheap *necessary*
    condition for ``R`` SPD (a batched 3x3 ``eigvalsh``); the Lanczos
    bounds — already computed by :meth:`StokesianDynamics
    .spectrum_bounds` for the Chebyshev generator — cover the global
    spectrum without an extra Lanczos run.
    """

    name = "spectrum"

    def __init__(
        self,
        cond_warn: float = 1e10,
        sym_tol: float = 1e-8,
        cadence: int = 16,
    ) -> None:
        self.cond_warn = float(cond_warn)
        self.sym_tol = float(sym_tol)
        # Batched eigvalsh over all diagonal blocks is the second most
        # expensive check; SPD violations it catches are not transient,
        # so a sparse cadence loses little detection latency.
        self.cadence = int(cadence)

    def check(self, ctx: HealthContext) -> InvariantResult:
        if ctx.bounds is not None:
            lo, hi = ctx.bounds
            if not (np.isfinite(lo) and np.isfinite(hi)) or lo <= 0:
                return self._result(
                    ctx,
                    Severity.FATAL,
                    f"resistance spectrum bounds [{lo:.3e}, {hi:.3e}] — "
                    f"matrix lost positive-definiteness",
                    value=float(lo),
                )
        if ctx.R is not None:
            diag = ctx.R.diagonal_blocks()
            asym = float(
                np.abs(diag - np.swapaxes(diag, 1, 2)).max(initial=0.0)
            )
            scale = float(np.abs(diag).max(initial=1.0)) or 1.0
            if asym > self.sym_tol * scale:
                return self._result(
                    ctx,
                    Severity.FATAL,
                    f"resistance diagonal blocks asymmetric by {asym:.3e} "
                    f"(relative tol {self.sym_tol:.1e})",
                    value=asym,
                )
            sym = 0.5 * (diag + np.swapaxes(diag, 1, 2))
            min_eig = float(np.linalg.eigvalsh(sym)[:, 0].min())
            if min_eig <= 0:
                block = int(np.linalg.eigvalsh(sym)[:, 0].argmin())
                return self._result(
                    ctx,
                    Severity.FATAL,
                    f"resistance diagonal block {block} is not positive-"
                    f"definite (min eigenvalue {min_eig:.3e})",
                    value=min_eig,
                )
        if ctx.bounds is not None:
            lo, hi = ctx.bounds
            cond = hi / lo
            if cond > self.cond_warn:
                return self._result(
                    ctx,
                    Severity.WARN,
                    f"resistance condition estimate {cond:.3e} exceeds "
                    f"{self.cond_warn:.1e} — solves may stagnate",
                    value=cond,
                )
            return self._result(ctx, Severity.OK, value=cond)
        return self._result(ctx, Severity.OK, "spectrum not observed")


class FluctuationDissipationCheck(InvariantCheck):
    """Sliding-window fluctuation–dissipation drift monitor.

    Per step it records the realized per-DOF displacement variance
    ``|Δr|²/dof`` and the solver-intended one ``|dt·u|²/dof`` (what the
    step *would* have moved without the overlap-safety rescaling).  The
    fluctuation–dissipation theorem fixes the expectation of the
    intended displacement at ``2·kT·dt·R⁻¹``, so over a window:

    * the **truncation ratio** realized/intended must stay near 1 — a
      window-mean below ``fatal_truncation`` means the overlap limiter
      is systematically destroying Brownian variance (``dt`` far too
      large: the trajectory stays finite but its diffusion is wrong);
    * the realized variance must lie inside the spectrum enclosure
      ``[2·kT·dt/λ_max, 2·kT·dt/λ_min]`` widened by ``band_slack``
      (a loose but assumption-free envelope).

    Entries are kept per ``dt``: a retry or heal that changes the step
    size flushes the window, so verdicts always describe a homogeneous
    stretch of trajectory.
    """

    name = "fluctuation-dissipation"

    def __init__(
        self,
        window: int = 8,
        warn_truncation: float = 0.9,
        fatal_truncation: float = 0.5,
        band_slack: float = 10.0,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if not 0 < fatal_truncation <= warn_truncation <= 1:
            raise ValueError(
                "need 0 < fatal_truncation <= warn_truncation <= 1"
            )
        if band_slack < 1:
            raise ValueError("band_slack must be >= 1")
        self.window = int(window)
        self.warn_truncation = float(warn_truncation)
        self.fatal_truncation = float(fatal_truncation)
        self.band_slack = float(band_slack)
        # (step_index, dt, realized, intended, band_lo, band_hi)
        self._entries: Deque[Tuple[int, float, float, float, float, float]] = (
            deque(maxlen=self.window)
        )

    def reset(self) -> None:
        self._entries.clear()

    def drop_since(self, step_index: int) -> None:
        self._entries = deque(
            (e for e in self._entries if e[0] < step_index),
            maxlen=self.window,
        )

    def check(self, ctx: HealthContext) -> InvariantResult:
        disp = ctx.arrays.get("displacement")
        vel = ctx.arrays.get("velocity")
        if disp is None or vel is None:
            return self._result(
                ctx, Severity.OK, "displacement not observed"
            )
        realized = float(np.mean(np.square(disp)))
        intended = float(np.mean(np.square(ctx.dt * np.asarray(vel))))
        if ctx.bounds is not None and ctx.bounds[0] > 0:
            lo, hi = ctx.bounds
            band_lo = 2.0 * ctx.kT * ctx.dt / hi
            band_hi = 2.0 * ctx.kT * ctx.dt / lo
        else:
            band_lo, band_hi = 0.0, np.inf
        if self._entries and any(e[1] != ctx.dt for e in self._entries):
            self._entries.clear()
        self._entries.append(
            (ctx.step_index, ctx.dt, realized, intended, band_lo, band_hi)
        )
        if len(self._entries) < self.window:
            return self._result(
                ctx,
                Severity.OK,
                f"window filling ({len(self._entries)}/{self.window})",
            )
        rows = np.array([e[2:] for e in self._entries])
        realized_m, intended_m, lo_m, hi_m = rows.mean(axis=0)
        truncation = realized_m / intended_m if intended_m > 0 else 1.0
        if truncation < self.fatal_truncation:
            return self._result(
                ctx,
                Severity.FATAL,
                f"realized Brownian variance is {truncation:.2f}x the "
                f"fluctuation-dissipation target 2*kT*dt over the last "
                f"{self.window} steps — overlap limiter is truncating "
                f"displacements (dt too large)",
                value=truncation,
            )
        out_of_band = np.isfinite(hi_m) and not (
            lo_m / self.band_slack <= realized_m <= hi_m * self.band_slack
        )
        if truncation < self.warn_truncation or out_of_band:
            return self._result(
                ctx,
                Severity.WARN,
                f"Brownian variance drifting: truncation {truncation:.2f}, "
                f"realized {realized_m:.3e} vs enclosure "
                f"[{lo_m:.3e}, {hi_m:.3e}]",
                value=truncation,
            )
        return self._result(ctx, Severity.OK, value=truncation)


def default_checks(
    *,
    overlap_tol: float = 1e-9,
    fd_window: int = 8,
    overlap_cadence: int = 8,
    spectrum_cadence: int = 16,
) -> List[InvariantCheck]:
    """The standard catalogue, in short-circuit order.

    ``finite-state`` must come first: the monitor skips the remaining
    checks for a step whose state is non-finite.  The two expensive
    checks (overlap pair scan, diagonal-block spectra) default to
    sparse cadences so the full catalogue stays within the 2%-of-step
    overhead budget; pass ``*_cadence=1`` for exhaustive runs.
    """
    return [
        FiniteStateCheck(),
        BoxEscapeCheck(),
        OverlapCheck(rel_tol=overlap_tol, cadence=overlap_cadence),
        SpectrumCheck(cadence=spectrum_cadence),
        FluctuationDissipationCheck(window=fd_window),
    ]
