"""Step acceptance/rejection: reject, retry, quarantine, or give up.

:class:`StepAcceptanceController` owns the retry loop around one time
step.  It snapshots driver state (``get_state``/``set_state``), attempts
the step, and diagnoses the outcome three ways:

1. a numerical exception from the solvers,
2. the baseline state screen (non-finite positions, overlapping
   particles — what the resilient runner always checked), and
3. when a :class:`~repro.health.monitor.HealthMonitor` is attached, any
   fatal invariant verdict the monitor recorded for the step.

A rejected step is rolled back (state *and* monitor observations) and
retried with ``dt`` halved per :class:`~repro.resilience.policies
.RetryPolicy` — unless the violation is traced to a stale MRHS block
solution, in which case the pending chunk is **quarantined** (its
remaining initial guesses discarded; the chunk finishes on cold-start
CG) and the step retried at the *same* ``dt``, because the guess, not
the step size, was the poison.

:class:`~repro.resilience.runner.ResilientRunner` composes this
controller rather than duplicating the loop; it can also be used
standalone around a bare driver.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional

import numpy as np

from repro.health.invariants import deepest_relative_overlap
from repro.health.monitor import HealthMonitor
from repro.resilience.faults import FaultInjected
from repro.resilience.policies import ResilienceExhausted, RetryPolicy
from repro.telemetry import NULL_HUB

__all__ = [
    "StepOutcome",
    "StepAcceptanceController",
    "violation_traced_to_guess",
]

logger = logging.getLogger(__name__)


def violation_traced_to_guess(driver: Any, failure: str) -> bool:
    """Is this step failure plausibly caused by a stale block solution?

    True when the driver is mid-chunk past column 0 (column 0 is the
    block solve's *exact* solution for step 0, so its failure cannot be
    guess staleness), the chunk is not already quarantined, and either
    the pending guess column is itself non-finite or the failure is a
    finiteness violation (a poisoned guess seeds CG with garbage, and
    CG preserves NaN).
    """
    pending = getattr(driver, "pending", None)
    if pending is None or getattr(pending, "quarantined", False):
        return False
    if pending.k <= 0:
        return False
    guess = np.asarray(pending.U[:, pending.k])
    if not np.isfinite(guess).all():
        return True
    return "finite" in failure


@dataclass
class StepOutcome:
    """Bookkeeping of one accepted step (after zero or more rejections)."""

    retries: int = 0
    dt_backoffs: int = 0
    quarantines: int = 0
    rejected_checks: List[str] = field(default_factory=list)
    """Invariant names whose fatal verdicts caused rejections."""
    backoff_seconds: float = 0.0
    """Total wall-clock wait spent between rejections and retries
    (:class:`~repro.resilience.policies.BackoffPolicy`)."""


class StepAcceptanceController:
    """The accept/reject/retry loop around one driver time step.

    Parameters
    ----------
    driver:
        A ``StokesianDynamics`` or ``MrhsStokesianDynamics`` instance.
    retry:
        Retry budget and dt-backoff policy.
    monitor:
        Optional health monitor.  Without one the controller reproduces
        the resilient runner's original behavior exactly (exception +
        state-screen diagnosis, every retry backs off ``dt``); with one,
        fatal invariant verdicts also reject steps and traced
        violations quarantine the MRHS chunk.
    sleep:
        Callable taking a delay in seconds, invoked before each retry
        with the :class:`~repro.resilience.policies.BackoffPolicy`
        delay (skipped when it is zero).  Defaults to
        :func:`time.sleep`; tests and the job service inject a virtual
        clock here.
    """

    def __init__(
        self,
        driver: Any,
        *,
        retry: RetryPolicy = RetryPolicy(),
        monitor: Optional[HealthMonitor] = None,
        sleep: Optional[Any] = None,
    ) -> None:
        self.driver = driver
        self.retry = retry
        self.monitor = monitor
        self.sleep = time.sleep if sleep is None else sleep
        self._chunked = hasattr(driver, "begin_chunk") and hasattr(driver, "sd")

    # ------------------------------------------------------------------
    def _sd(self):
        return self.driver.sd if self._chunked else self.driver

    @property
    def step_index(self) -> int:
        return int(self._sd().step_index)

    def _set_dt(self, dt: float) -> None:
        sd = self._sd()
        sd.params = replace(sd.params, dt=dt)

    # ------------------------------------------------------------------
    def diagnose(self, step_at: int) -> Optional[tuple[str, Optional[str]]]:
        """Post-step verdict: ``None`` (accept) or ``(failure, check)``.

        ``check`` is the violated invariant's name when the monitor
        produced the verdict, ``None`` for the baseline state screen.
        """
        sd = self._sd()
        positions = sd.system.positions
        if not np.isfinite(positions).all():
            return "non-finite positions", None
        if deepest_relative_overlap(sd.system) > self.retry.overlap_tol:
            return "overlapping particles", None
        if self.monitor is not None:
            fatal = self.monitor.fatal_for(step_at)
            if fatal is not None:
                return (
                    f"invariant '{fatal.check}' violated at step "
                    f"{step_at}: {fatal.message}",
                    fatal.check,
                )
        return None

    def attempt_step(self) -> StepOutcome:
        """Advance one accepted step, rejecting and retrying as needed.

        Raises :class:`ResilienceExhausted` when the retry budget runs
        out, and lets :class:`FaultInjected` (deliberate drill faults)
        propagate untouched.
        """
        shadow = self.driver.get_state()
        shadow_dt = float(self._sd().params.dt)
        telemetry = getattr(self._sd(), "telemetry", NULL_HUB)
        outcome = StepOutcome()
        retries = 0
        backoffs = 0
        while True:
            # Snapshot per attempt: a rejection withdraws the metrics of
            # *this* attempt only (mirroring monitor.rollback), keeping
            # the rejection counters of earlier attempts intact.
            metrics_shadow = telemetry.metrics.snapshot()
            step_at = self.step_index
            failure: Optional[str] = None
            check: Optional[str] = None
            try:
                if self._chunked:
                    self.driver.step_in_chunk()
                else:
                    self.driver.step()
            except FaultInjected:
                raise
            except (ValueError, RuntimeError, ArithmeticError,
                    np.linalg.LinAlgError) as exc:
                failure = f"step raised {type(exc).__name__}: {exc}"
            if failure is None:
                verdict = self.diagnose(step_at)
                if verdict is not None:
                    failure, check = verdict
            if failure is None:
                if self._chunked and self.driver.pending is not None:
                    self.driver.pending.retries += retries
                return outcome
            if check is not None:
                outcome.rejected_checks.append(check)
            if retries >= self.retry.max_retries:
                raise ResilienceExhausted(
                    f"step {self.step_index} failed after "
                    f"{retries} retries: {failure}"
                )
            # Reject: roll back the state, the monitor's view of it, and
            # the rejected attempt's metrics.
            self.driver.set_state(shadow)
            if self.monitor is not None:
                self.monitor.rollback(step_at)
            if metrics_shadow is not None:
                telemetry.metrics.restore(metrics_shadow)
            telemetry.metrics.counter("steps.rejected").inc()
            retries += 1
            outcome.retries += 1
            # Seeded exponential backoff between rejection and retry —
            # deterministic under a fixed seed, so campaign replays
            # stall for identical spans (immediate by default).
            wait = self.retry.backoff.delay(retries, key=step_at)
            if wait > 0:
                outcome.backoff_seconds += wait
                telemetry.metrics.counter("steps.backoff_seconds").inc(wait)
                self.sleep(wait)
            if (
                self.monitor is not None
                and self._chunked
                and violation_traced_to_guess(self.driver, failure)
            ):
                # The block solution, not the step size, is the poison:
                # quarantine the chunk and retry at the same dt.
                self.driver.quarantine_chunk(reason=failure)
                outcome.quarantines += 1
                logger.warning(
                    "step %d rejected (%s); violation traced to a stale "
                    "block solution — chunk %d quarantined, retry %d on "
                    "cold-start CG",
                    step_at, failure,
                    self.driver.pending.chunk_index, retries,
                )
            else:
                backoffs += 1
                outcome.dt_backoffs += 1
                telemetry.metrics.counter("steps.dt_backoffs").inc()
                new_dt = shadow_dt * self.retry.dt_backoff**backoffs
                self._set_dt(new_dt)
                logger.warning(
                    "step %d rejected (%s); retry %d with dt=%.3g",
                    step_at, failure, retries, new_dt,
                )
