"""Turning counted traffic and flops into simulated machine time.

The reproduction cannot run on the paper's Xeons, so Table II-style
numbers ("SPMV achieves 17.8 GB/s and 3.6 Gflops on WSM") are produced
by feeding the *exactly counted* bytes and flops of a kernel invocation
(:mod:`repro.sparse.traffic`) into the machine's roofline:

    T = max(bytes / B, flops / F)

The achieved bandwidth is then ``bytes / T`` and the achieved flop rate
``flops / T`` — by construction one of the two equals the machine's
limit and the other is derated, exactly as on real hardware at the
roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MachineSpec
from repro.sparse.traffic import TrafficCounts

__all__ = ["simulated_seconds", "achieved_rates", "AchievedRates"]


@dataclass(frozen=True)
class AchievedRates:
    """Simulated performance of one kernel invocation on a machine."""

    seconds: float
    gbytes_per_s: float
    gflops: float
    bound: str
    """``"bandwidth"`` or ``"compute"`` — which roofline limb binds."""


def simulated_seconds(counts: TrafficCounts, machine: MachineSpec) -> float:
    """Roofline time of an operation with the given byte/flop counts."""
    t_bw = counts.total_bytes / machine.stream_bw
    t_comp = counts.flops / machine.flop_rate
    return max(t_bw, t_comp)


def achieved_rates(counts: TrafficCounts, machine: MachineSpec) -> AchievedRates:
    """Simulated seconds plus the achieved GB/s and Gflop/s (Table II)."""
    t_bw = counts.total_bytes / machine.stream_bw
    t_comp = counts.flops / machine.flop_rate
    seconds = max(t_bw, t_comp)
    return AchievedRates(
        seconds=seconds,
        gbytes_per_s=counts.total_bytes / seconds / 1e9,
        gflops=counts.flops / seconds / 1e9,
        bound="bandwidth" if t_bw >= t_comp else "compute",
    )
