"""Machine descriptions for the performance model.

The paper evaluates on two single-node systems and one cluster
(Section IV.C):

* **WSM** — Intel Xeon X5680 (Westmere): 6 cores at 3.3 GHz, 79 Gflop/s
  double-precision peak, 12 MiB shared L3, 3 channels DDR3-1333
  (32 GB/s peak).  Measured: STREAM ``B`` = 23 GB/s, basic-kernel
  ``F`` = 45 Gflop/s.
* **SNB** — Intel Xeon E5-2670 (Sandy Bridge): 8 cores at 2.6 GHz,
  166 Gflop/s peak, 20 MiB L3, 4 channels DDR3 (43 GB/s peak).
  Measured: ``B`` = 33 GB/s, ``F`` = 90 Gflop/s.
* **CLUSTER_NODE** — the 64-node cluster's per-node CPU: same as WSM
  but clocked at 2.9 GHz (single socket used).

Since this reproduction runs on commodity hardware, these specs are
*model inputs*, not measurements: the roofline and MRHS models consume
``B``, ``F`` and ``llc_bytes`` to predict what the paper's machines
would do.  :func:`host_machine` builds a spec for the machine the tests
actually run on by measuring ``B`` and ``F`` with
:mod:`repro.perfmodel.stream`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_positive

__all__ = [
    "MachineSpec",
    "WESTMERE",
    "SANDY_BRIDGE",
    "CLUSTER_NODE",
    "host_machine",
]

GB = 1e9
MiB = 2**20


@dataclass(frozen=True)
class MachineSpec:
    """A node description sufficient for the GSPMV performance model.

    Attributes
    ----------
    name:
        Human-readable identifier.
    cores:
        Physical cores used.
    freq_ghz:
        Core clock, GHz.
    peak_gflops:
        Double-precision peak flop rate of the cores used.
    stream_bw:
        Achievable memory bandwidth ``B`` in bytes/second (STREAM-like,
        write-allocate corrected as in the paper).
    kernel_gflops:
        Achievable flop rate ``F`` of the 3x3-block basic kernel, in
        Gflop/s (the paper measured ~70% of peak on both machines).
    llc_bytes:
        Last-level cache capacity in bytes (input to the ``k(m)``
        estimator).
    """

    name: str
    cores: int
    freq_ghz: float
    peak_gflops: float
    stream_bw: float
    kernel_gflops: float
    llc_bytes: float

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("freq_ghz", self.freq_ghz)
        check_positive("peak_gflops", self.peak_gflops)
        check_positive("stream_bw", self.stream_bw)
        check_positive("kernel_gflops", self.kernel_gflops)
        check_positive("llc_bytes", self.llc_bytes)

    @property
    def flop_rate(self) -> float:
        """``F`` in flops/second."""
        return self.kernel_gflops * 1e9

    @property
    def byte_per_flop(self) -> float:
        """The paper's ``B/F`` ratio (bytes of bandwidth per kernel flop).

        0.51 for WSM and 0.37 for SNB with the published measurements
        (the paper quotes 0.55 and 0.37).
        """
        return self.stream_bw / self.flop_rate

    def with_threads(self, threads: int, *, bw_saturation_threads: float = 3.0) -> "MachineSpec":
        """Return the spec scaled to ``threads`` active threads.

        The flop rate scales linearly with threads; memory bandwidth
        saturates once a few threads can cover the memory latency
        (modelled as ``B(t) = B * t / (t - 1 + s)`` normalized so that
        ``B(cores) = B``), reproducing the paper's Figure 8 observation
        that ``B/F`` *drops* as threads increase — which is exactly why
        the MRHS speedup grows with thread count.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        s = float(bw_saturation_threads)
        # Saturating curve through (cores, B).
        def bw_at(t: float) -> float:
            return t / (t - 1.0 + s)

        scale_bw = bw_at(threads) / bw_at(self.cores)
        return replace(
            self,
            name=f"{self.name}-{threads}t",
            cores=threads,
            peak_gflops=self.peak_gflops * threads / self.cores,
            kernel_gflops=self.kernel_gflops * threads / self.cores,
            stream_bw=self.stream_bw * scale_bw,
        )


WESTMERE = MachineSpec(
    name="WSM",
    cores=6,
    freq_ghz=3.3,
    peak_gflops=79.0,
    stream_bw=23.0 * GB,
    kernel_gflops=45.0,
    llc_bytes=12 * MiB,
)

SANDY_BRIDGE = MachineSpec(
    name="SNB",
    cores=8,
    freq_ghz=2.6,
    peak_gflops=166.0,
    stream_bw=33.0 * GB,
    kernel_gflops=90.0,
    llc_bytes=20 * MiB,
)

# The cluster nodes are WSM parts down-clocked to 2.9 GHz (Section IV.C2);
# bandwidth is unchanged (same memory subsystem), compute scales with clock.
CLUSTER_NODE = MachineSpec(
    name="cluster-WSM-2.9GHz",
    cores=6,
    freq_ghz=2.9,
    peak_gflops=79.0 * 2.9 / 3.3,
    stream_bw=23.0 * GB,
    kernel_gflops=45.0 * 2.9 / 3.3,
    llc_bytes=12 * MiB,
)


def host_machine(*, quick: bool = True) -> MachineSpec:
    """Measure a :class:`MachineSpec` for the machine running this process.

    ``B`` comes from a STREAM-triad measurement, ``F`` from timing the
    blocked basic kernel on a cache-resident problem.  ``quick`` keeps
    the measurement under ~1 second.
    """
    from repro.perfmodel.stream import measure_kernel_flops, measure_stream_bandwidth

    bw = measure_stream_bandwidth(quick=quick)
    gflops = measure_kernel_flops(quick=quick)
    return MachineSpec(
        name="host",
        cores=1,
        freq_ghz=1.0,
        peak_gflops=max(gflops, 1e-3),
        stream_bw=bw,
        kernel_gflops=max(gflops, 1e-3),
        llc_bytes=8 * MiB,
    )
