"""Analytical performance model of (G)SPMV and the MRHS algorithm.

This package is the reproduction's stand-in for the paper's Intel
hardware (see DESIGN.md, "Substitutions").  It contains:

* :mod:`repro.perfmodel.machine` — machine descriptions (STREAM
  bandwidth ``B``, achievable basic-kernel flop rate ``F``, last-level
  cache) for the paper's Westmere (WSM) and Sandy Bridge (SNB) systems,
  with thread-count scaling;
* :mod:`repro.perfmodel.roofline` — the GSPMV time model
  ``T(m) = max(Tbw(m), Tcomp(m))`` and relative time ``r(m)`` (Eq. 8);
* :mod:`repro.perfmodel.profile` — the Figure 1 profile: how many
  vectors can be multiplied within a given multiple of single-vector
  time, as a function of ``nnzb/nb`` and ``B/F``;
* :mod:`repro.perfmodel.mrhs_model` — the Section V.B.3 analysis:
  average per-step time ``Tmrhs(m)`` (Eq. 9), its bandwidth/compute
  regimes (Eqs. 11–12), the crossover ``m_s`` and the optimum
  ``m_optimal``;
* :mod:`repro.perfmodel.cost` — converts exactly counted kernel traffic
  and flops into simulated seconds on a chosen machine;
* :mod:`repro.perfmodel.stream` — STREAM-triad and block-kernel
  micro-benchmarks to calibrate a :class:`MachineSpec` for the host.
"""

from repro.perfmodel.machine import (
    MachineSpec,
    WESTMERE,
    SANDY_BRIDGE,
    CLUSTER_NODE,
    host_machine,
)
from repro.perfmodel.roofline import (
    GspmvTimeModel,
    MatrixShape,
    relative_time,
    time_bandwidth,
    time_compute,
    time_gspmv,
)
from repro.perfmodel.engines import EngineProfile, calibrate_profile
from repro.perfmodel.profile import vectors_within_ratio, profile_grid
from repro.perfmodel.mrhs_model import (
    MrhsCostModel,
    SolverCounts,
)
from repro.perfmodel.cost import simulated_seconds, achieved_rates
from repro.perfmodel.stream import measure_stream_bandwidth, measure_kernel_flops

__all__ = [
    "MachineSpec",
    "WESTMERE",
    "SANDY_BRIDGE",
    "CLUSTER_NODE",
    "host_machine",
    "GspmvTimeModel",
    "MatrixShape",
    "relative_time",
    "time_bandwidth",
    "time_compute",
    "time_gspmv",
    "EngineProfile",
    "calibrate_profile",
    "vectors_within_ratio",
    "profile_grid",
    "MrhsCostModel",
    "SolverCounts",
    "simulated_seconds",
    "achieved_rates",
    "measure_stream_bandwidth",
    "measure_kernel_flops",
]
