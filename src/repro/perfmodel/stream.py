"""Host micro-benchmarks: STREAM-triad bandwidth and basic-kernel flops.

The paper calibrates its model with two measurements (Section IV.D1):
STREAM bandwidth ``B`` and the achievable flop rate ``F`` of the 3x3
basic kernel run on a cache-resident block.  These functions provide
the same two measurements for the host running this library, so that
model predictions can be compared against wall-clock kernel timings on
whatever machine the tests execute on.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["measure_stream_bandwidth", "measure_kernel_flops"]


def measure_stream_bandwidth(
    *,
    quick: bool = True,
    array_mb: float | None = None,
    repeats: int | None = None,
) -> float:
    """STREAM-triad (``a = b + s*c``) bandwidth in bytes/second.

    Counts three arrays moved per element (two reads and one write; the
    paper applied the same 4/3 write-allocate correction to its STREAM
    numbers, which NumPy's out-parameter stores also avoid needing).
    """
    mb = array_mb if array_mb is not None else (16.0 if quick else 64.0)
    reps = repeats if repeats is not None else (3 if quick else 10)
    n = int(mb * 1e6 / 8)
    b = np.ones(n)
    c = np.full(n, 0.5)
    a = np.empty(n)
    scale = 3.0
    # Warm-up pass touches all pages.
    np.add(b, scale * c, out=a)
    best = np.inf
    for _ in range(reps):
        start = time.perf_counter()
        np.multiply(c, scale, out=a)
        np.add(a, b, out=a)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    # multiply moves b? no: moves c(read)+a(write); add moves a(read)+b(read)+a(write).
    bytes_moved = 5 * n * 8
    return bytes_moved / best


def measure_kernel_flops(
    *,
    quick: bool = True,
    n_blocks: int | None = None,
    m: int = 8,
    repeats: int | None = None,
) -> float:
    """Achievable Gflop/s of the 3x3-block basic kernel on resident data.

    Mirrors the paper's F benchmark: "a simple benchmark that repeatedly
    computed with the same block of memory" for various m.
    """
    nb = n_blocks if n_blocks is not None else (2000 if quick else 20000)
    reps = repeats if repeats is not None else (5 if quick else 20)
    rng = np.random.default_rng(0)
    blocks = rng.standard_normal((nb, 3, 3))
    x = rng.standard_normal((nb, 3, m))
    out = np.empty((nb, 3, m))
    path, _ = np.einsum_path("kij,kjm->kim", blocks, x, optimize="optimal")
    np.einsum("kij,kjm->kim", blocks, x, out=out, optimize=path)  # warm-up
    best = np.inf
    for _ in range(reps):
        start = time.perf_counter()
        np.einsum("kij,kjm->kim", blocks, x, out=out, optimize=path)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    flops = 2 * 9 * m * nb
    return flops / best / 1e9
