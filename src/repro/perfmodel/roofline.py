"""The GSPMV time model of Section IV.B (single node).

For a BCRS matrix with ``nb`` block rows, ``nnzb`` non-zero blocks and
``b x b`` blocks, one GSPMV with ``m`` vectors is modelled as

    Tbw(m)   = Mtr(m) / B                (bandwidth bound)
    Tcomp(m) = fa * m * nnzb / F         (compute bound)
    T(m)     = max(Tbw(m), Tcomp(m))

with ``Mtr(m) = m*nb*(3+k(m))*sx + 4*nb + nnzb*(4+sa)`` and
``fa = 2*b^2``.  The *relative time*

    r(m) = T(m) / Tbw(1)

(Eq. 8) is what Figures 2–4 plot: how much longer multiplying by ``m``
vectors takes than multiplying by one (T(1) is assumed
bandwidth-bound, as it always is in practice).

Two interfaces are provided: a parametric one on
:class:`MatrixShape` (used by the Figure 1 profile, where no concrete
matrix exists), and :class:`GspmvTimeModel`, which binds a concrete
:class:`~repro.sparse.bcrs.BCRSMatrix` plus machine and evaluates
``k(m)`` with the LRU estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.perfmodel.machine import MachineSpec
from repro.sparse.bcrs import BCRSMatrix
from repro.sparse.traffic import INDEX_BYTES, estimate_k

if TYPE_CHECKING:  # pragma: no cover - engines imports this module
    from repro.perfmodel.engines import EngineProfile

__all__ = [
    "MatrixShape",
    "time_bandwidth",
    "time_compute",
    "time_gspmv",
    "relative_time",
    "GspmvTimeModel",
]


@dataclass(frozen=True)
class MatrixShape:
    """The structural parameters the time model needs.

    ``blocks_per_row`` is the paper's ``nnzb/nb``; ``sx`` the vector
    scalar size in bytes; ``block_size`` the block edge ``b``.
    """

    nb: int
    blocks_per_row: float
    block_size: int = 3
    sx: int = 8

    @property
    def nnzb(self) -> float:
        return self.nb * self.blocks_per_row

    @property
    def sa(self) -> int:
        """Bytes per stored matrix block (double precision)."""
        return self.block_size**2 * 8

    @property
    def fa(self) -> int:
        """Flops per block-times-block-of-vector-slices multiply, per vector."""
        return 2 * self.block_size**2

    @classmethod
    def of(cls, A: BCRSMatrix, sx: int = 8) -> "MatrixShape":
        return cls(
            nb=A.nb_rows,
            blocks_per_row=A.blocks_per_row,
            block_size=A.block_size,
            sx=sx,
        )


def time_bandwidth(shape: MatrixShape, m: int, machine: MachineSpec, k: float = 0.0) -> float:
    """``Tbw(m)``: seconds to stream ``Mtr(m)`` at bandwidth ``B``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    mtr = (
        m * shape.nb * (3.0 + k) * shape.sx
        + INDEX_BYTES * shape.nb
        + shape.nnzb * (INDEX_BYTES + shape.sa)
    )
    return mtr / machine.stream_bw


def time_compute(shape: MatrixShape, m: int, machine: MachineSpec) -> float:
    """``Tcomp(m)``: seconds to execute ``fa * m * nnzb`` flops at rate ``F``."""
    if m < 1:
        raise ValueError("m must be >= 1")
    return shape.fa * m * shape.nnzb / machine.flop_rate


def time_gspmv(shape: MatrixShape, m: int, machine: MachineSpec, k: float = 0.0) -> float:
    """``T(m) = max(Tbw(m), Tcomp(m))``."""
    return max(time_bandwidth(shape, m, machine, k), time_compute(shape, m, machine))


def relative_time(
    shape: MatrixShape,
    m: int,
    machine: MachineSpec,
    *,
    k: float = 0.0,
    k1: Optional[float] = None,
) -> float:
    """Eq. 8: ``r(m) = max(Tbw(m), Tcomp(m)) / Tbw(1)``.

    ``k`` is ``k(m)`` at the requested ``m``; ``k1`` is ``k(1)`` for the
    denominator (defaults to ``k``).
    """
    k1 = k if k1 is None else k1
    return time_gspmv(shape, m, machine, k) / time_bandwidth(shape, 1, machine, k1)


class GspmvTimeModel:
    """The time model bound to a concrete matrix and machine.

    Evaluates ``k(m)`` with the LRU stack-distance estimator of
    :func:`repro.sparse.traffic.estimate_k` (cached per ``m``), so
    predictions account for the growing multivector working set exactly
    as the paper's model does.

    An optional :class:`~repro.perfmodel.engines.EngineProfile` scales
    the peak model to a concrete kernel engine's measured efficiency;
    without one, predictions are the machine-peak lower bound.
    """

    def __init__(
        self,
        A: BCRSMatrix,
        machine: MachineSpec,
        *,
        k_override: Optional[Callable[[int], float]] = None,
        sample_rows: Optional[int] = None,
        profile: Optional["EngineProfile"] = None,
    ) -> None:
        self.matrix = A
        self.machine = machine
        self.shape = MatrixShape.of(A)
        self.profile = profile
        self._k_override = k_override
        self._sample_rows = sample_rows
        self._k_cache: dict[int, float] = {}

    def k(self, m: int) -> float:
        """``k(m)`` for this matrix on this machine's LLC."""
        if m not in self._k_cache:
            if self._k_override is not None:
                self._k_cache[m] = float(self._k_override(m))
            else:
                self._k_cache[m] = estimate_k(
                    self.matrix,
                    m,
                    self.machine.llc_bytes,
                    sample_rows=self._sample_rows,
                )
        return self._k_cache[m]

    def time(self, m: int) -> float:
        """Predicted seconds for one GSPMV with ``m`` vectors."""
        return max(self.time_bandwidth(m), self.time_compute(m))

    def time_bandwidth(self, m: int) -> float:
        if self.profile is not None:
            return self.profile.time_bandwidth(
                self.shape, m, self.machine, self.k(m)
            )
        return time_bandwidth(self.shape, m, self.machine, self.k(m))

    def time_compute(self, m: int) -> float:
        if self.profile is not None:
            return self.profile.time_compute(self.shape, m, self.machine)
        return time_compute(self.shape, m, self.machine)

    def relative_time(self, m: int) -> float:
        """Eq. 8 with structure-derived ``k(m)`` and ``k(1)``."""
        return self.time(m) / self.time_bandwidth(1)

    def is_bandwidth_bound(self, m: int) -> bool:
        return self.time_bandwidth(m) >= self.time_compute(m)

    def crossover_m(self, m_max: int = 1024) -> Optional[int]:
        """``m_s``: smallest m at which GSPMV becomes compute-bound.

        Returns ``None`` when the kernel stays bandwidth-bound for every
        ``m <= m_max`` (the paper's "very small nnzb/nb" regime, e.g. a
        diagonal matrix).
        """
        for m in range(1, m_max + 1):
            if not self.is_bandwidth_bound(m):
                return m
        return None
