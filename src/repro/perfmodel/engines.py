"""Engine-aware extensions of the Section IV.B time model.

The paper's model predicts ``T(m) = max(Tbw, Tcomp)`` from machine
peaks — the *best possible* kernel.  Real engines reach different
fractions of those peaks (the NumPy reference kernel streams extra
temporaries; the generated C kernel runs at the STREAM limit; the dedup
engine does not stream repeated blocks at all), so comparing one model
against every engine either flags good engines or excuses bad ones.

:class:`EngineProfile` captures an engine's efficiency as three scale
factors on the raw model, and :func:`calibrate_profile` fits the single
time scale from measurements at one (or a few) ``m`` — after which the
model must *predict* other ``m`` within the roofline report threshold
for the profile to be considered valid (``bench_kernels`` records
exactly this check, closing the "flag but never converge" gap of PR 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Union

from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.roofline import MatrixShape, time_bandwidth

__all__ = ["EngineProfile", "calibrate_profile", "trusted_profiles"]


def trusted_profiles(
    profiles: Union[Mapping[str, "EngineProfile"], Iterable["EngineProfile"]],
    quarantined: Iterable[str],
) -> Dict[str, "EngineProfile"]:
    """Drop profiles of engines the watchdog has quarantined.

    Performance-model comparisons (roofline validation, engine ranking)
    must not reason about an engine whose *answers* are distrusted —
    a fast wrong kernel would win every ranking.  ``quarantined`` is a
    set of engine names, typically
    ``get_engine_watch().quarantined_engines(shape)``.
    """
    banned = set(quarantined)
    if isinstance(profiles, Mapping):
        items = profiles.items()
    else:
        items = ((p.engine, p) for p in profiles)
    return {name: p for name, p in items if p.engine not in banned}


@dataclass(frozen=True)
class EngineProfile:
    """Efficiency scales turning the peak model into an engine model.

    Attributes
    ----------
    engine:
        Engine name this profile describes (registry vocabulary).
    bw_scale:
        Fraction of ``machine.stream_bw`` the engine sustains (< 1 for
        kernels with extra temporaries or strided access).
    flop_scale:
        Fraction of ``machine.flop_rate`` the engine sustains.
    block_traffic_scale:
        Fraction of the ``nnzb * sa`` block bytes actually streamed —
        below 1 only for the ``dedup`` engine, whose unique-block pool
        replaces repeated block reads (``n_unique / nnzb`` in the
        cache-friendly limit).
    """

    engine: str
    bw_scale: float = 1.0
    flop_scale: float = 1.0
    block_traffic_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bw_scale <= 0 or self.flop_scale <= 0:
            raise ValueError("bw_scale and flop_scale must be positive")
        if not 0.0 < self.block_traffic_scale <= 1.0:
            raise ValueError("block_traffic_scale must be in (0, 1]")

    # ------------------------------------------------------------------
    def time_bandwidth(
        self, shape: MatrixShape, m: int, machine: MachineSpec,
        k: float = 0.0,
    ) -> float:
        """``Tbw(m)`` at the engine's effective bandwidth and traffic."""
        # Recover Mtr(m) from the raw model, then discount the block
        # bytes the engine does not stream (dedup's pooled blocks).
        mtr = time_bandwidth(shape, m, machine, k) * machine.stream_bw
        mtr -= shape.nnzb * shape.sa * (1.0 - self.block_traffic_scale)
        return mtr / (machine.stream_bw * self.bw_scale)

    def time_compute(
        self, shape: MatrixShape, m: int, machine: MachineSpec
    ) -> float:
        """``Tcomp(m)`` at the engine's effective flop rate."""
        return shape.fa * m * shape.nnzb / (
            machine.flop_rate * self.flop_scale
        )

    def time(
        self, shape: MatrixShape, m: int, machine: MachineSpec,
        k: float = 0.0,
    ) -> float:
        """``T(m) = max(Tbw, Tcomp)`` under this profile."""
        return max(
            self.time_bandwidth(shape, m, machine, k),
            self.time_compute(shape, m, machine),
        )


def calibrate_profile(
    engine: str,
    shape: MatrixShape,
    machine: MachineSpec,
    samples: Mapping[int, float],
    *,
    k: float = 0.0,
    block_traffic_scale: float = 1.0,
) -> EngineProfile:
    """Fit an :class:`EngineProfile` from measured seconds per call.

    ``samples`` maps ``m -> measured seconds``.  The two scales are
    fitted from the two ends of the roofline — exactly where each bound
    is observable:

    * ``bw_scale`` from the *smallest* sampled ``m``, where GSPMV is
      bandwidth-dominated (always true at m=1 in practice), as the
      ratio of the raw bandwidth bound to the measured time;
    * ``flop_scale`` from the *largest* sampled ``m``, where the
      per-vector work dominates, as the ratio of the raw compute bound
      to the measured time.

    The profile therefore reproduces the two calibration endpoints (up
    to the max() kink) and must *predict* every interior ``m`` — which
    is what the roofline validation then checks.  With a single sample
    one common efficiency is applied to both scales.

    Fitted scales may exceed 1: ``machine.kernel_gflops`` is calibrated
    with the reference NumPy kernel, which compiled engines outrun.
    """
    if not samples:
        raise ValueError("samples must contain at least one (m, seconds)")
    for m, measured in samples.items():
        if measured <= 0:
            raise ValueError(f"measured time for m={m} must be positive")
    base = EngineProfile(
        engine=engine, block_traffic_scale=block_traffic_scale
    )
    m_lo, m_hi = min(samples), max(samples)
    if m_lo == m_hi:
        scale = samples[m_lo] / base.time(shape, m_lo, machine, k)
        efficiency = 1.0 / scale
        return EngineProfile(
            engine=engine,
            bw_scale=efficiency,
            flop_scale=efficiency,
            block_traffic_scale=block_traffic_scale,
        )
    bw_scale = base.time_bandwidth(shape, m_lo, machine, k) / samples[m_lo]
    flop_scale = base.time_compute(shape, m_hi, machine) / samples[m_hi]
    return EngineProfile(
        engine=engine,
        bw_scale=bw_scale,
        flop_scale=flop_scale,
        block_traffic_scale=block_traffic_scale,
    )
