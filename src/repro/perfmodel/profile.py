"""The Figure 1 profile.

Figure 1 of the paper plots, as a function of the matrix density
``nnzb/nb`` (x, 6..84) and the machine balance ``B/F`` (y, 0.02..0.6),
the number of vectors that can be multiplied within **2x** the time of
a single-vector SPMV, optimistically assuming ``k(m) = 0``.

With ``k = 0`` the bound is closed-form.  Writing ``q = nnzb/nb``,
``C = 4 + q*(4 + sa)`` (bytes per block row that do not depend on m) and
``D = 3*sx + C`` (single-vector bytes per block row), Eq. 8 gives

    bandwidth bound:  m <= (ratio*D - C) / (3*sx)
    compute bound:    m <= ratio*D / (fa * q * (B/F))

and the profile value is the floor of the smaller bound (at least 1).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.traffic import INDEX_BYTES

__all__ = ["vectors_within_ratio", "profile_grid"]


def vectors_within_ratio(
    blocks_per_row: float,
    byte_per_flop: float,
    *,
    ratio: float = 2.0,
    k: float = 0.0,
    block_size: int = 3,
    sx: int = 8,
) -> int:
    """Largest ``m`` with ``r(m) <= ratio`` under the Eq. 8 model.

    Parameters mirror Figure 1's axes: ``blocks_per_row`` is ``nnzb/nb``
    and ``byte_per_flop`` is ``B/F``.  ``k`` is applied to both the
    ``m``-vector numerator and the single-vector denominator (the
    figure uses ``k = 0``).
    """
    if blocks_per_row <= 0:
        raise ValueError("blocks_per_row must be positive")
    if byte_per_flop <= 0:
        raise ValueError("byte_per_flop must be positive")
    if ratio < 1.0:
        raise ValueError("ratio must be >= 1")
    sa = block_size**2 * 8
    fa = 2 * block_size**2
    q = blocks_per_row
    c = INDEX_BYTES + q * (INDEX_BYTES + sa)
    d = (3.0 + k) * sx + c
    m_bw = (ratio * d - c) / ((3.0 + k) * sx)
    m_comp = ratio * d / (fa * q * byte_per_flop)
    m = int(np.floor(min(m_bw, m_comp)))
    return max(1, m)


def profile_grid(
    blocks_per_row_values: np.ndarray,
    byte_per_flop_values: np.ndarray,
    *,
    ratio: float = 2.0,
    k: float = 0.0,
) -> np.ndarray:
    """Evaluate :func:`vectors_within_ratio` over a grid (Figure 1).

    Returns an array of shape ``(len(byte_per_flop_values),
    len(blocks_per_row_values))`` — y-major like the figure.
    """
    q = np.asarray(blocks_per_row_values, dtype=float)
    bf = np.asarray(byte_per_flop_values, dtype=float)
    out = np.empty((len(bf), len(q)), dtype=int)
    for i, y in enumerate(bf):
        for j, x in enumerate(q):
            out[i, j] = vectors_within_ratio(x, y, ratio=ratio, k=k)
    return out
