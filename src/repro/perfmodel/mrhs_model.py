"""The Section V.B.3 analysis: how many right-hand sides to use.

The average time of one simulation step under the MRHS algorithm with
``m`` right-hand sides is (Eq. 9)

    Tmrhs(m) = (1/m) * [ N*T(m)            -- Calc guesses (block solve)
                       + Cmax*T(m)         -- Cheb vectors
                       + (m-1)*N1*T(1)     -- 1st solve with guess
                       + m*N2*T(1)         -- 2nd solve
                       + (m-1)*Cmax*T(1) ] -- Cheb single

where ``T(m)`` is the GSPMV time model, ``N`` the iterations of a solve
*without* a guess, ``N1``/``N2`` the iterations of the 1st/2nd in-step
solves *with* guesses, and ``Cmax`` the Chebyshev polynomial order.

While GSPMV is bandwidth-bound (``m < m_s``) this is a decreasing
function of ``m`` (Eq. 11, constants P/Q/R); once compute-bound
(``m >= m_s``) it increases (Eq. 12, constants S/W).  Hence the paper's
conclusion: **the best m is near the bandwidth→compute crossover
m_s** — Table VIII verifies ``m_optimal ≈ m_s`` experimentally and so
do our benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.roofline import GspmvTimeModel
from repro.sparse.bcrs import BCRSMatrix
from repro.sparse.traffic import INDEX_BYTES

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perfmodel.engines import EngineProfile

__all__ = ["SolverCounts", "MrhsCostModel"]


@dataclass(frozen=True)
class SolverCounts:
    """Iteration counts characterizing the solver behaviour.

    Attributes
    ----------
    n_noguess:
        ``N``: CG iterations of a solve from a zero initial guess.
    n_first:
        ``N1``: iterations of the first in-step solve when started from
        the block-solve guess.
    n_second:
        ``N2``: iterations of the second (midpoint) solve started from
        the first solve's solution.
    cheb_order:
        ``Cmax``: maximum Chebyshev polynomial order for the Brownian
        force (30 in the paper's experiments).
    """

    n_noguess: int
    n_first: int
    n_second: int
    cheb_order: int = 30

    def __post_init__(self) -> None:
        if not (self.n_noguess >= 1 and self.n_first >= 0 and self.n_second >= 0):
            raise ValueError("iteration counts must be non-negative (N >= 1)")
        if self.cheb_order < 1:
            raise ValueError("cheb_order must be >= 1")
        if self.n_first > self.n_noguess:
            raise ValueError(
                "N1 > N: a guessed solve cannot need more iterations than an "
                "unguessed one under this model"
            )


class MrhsCostModel:
    """Evaluates ``Tmrhs(m)`` and locates ``m_s`` and ``m_optimal``.

    Paper Figure 7 overlays the achieved average step time with this
    model's bandwidth-bound and compute-bound estimates; Table VIII
    compares ``m_s`` with the empirically best ``m``.
    """

    def __init__(
        self,
        A: BCRSMatrix,
        machine: MachineSpec,
        counts: SolverCounts,
        *,
        time_model: Optional[GspmvTimeModel] = None,
        engine_profile: Optional["EngineProfile"] = None,
    ) -> None:
        self.counts = counts
        self.model = time_model or GspmvTimeModel(
            A, machine, profile=engine_profile
        )
        self.machine = machine

    # ------------------------------------------------------------------
    # Eq. 9, evaluated with the piecewise T(m)
    # ------------------------------------------------------------------
    def average_step_time(self, m: int) -> float:
        """``Tmrhs(m)``: modelled average seconds per simulation step."""
        if m < 1:
            raise ValueError("m must be >= 1")
        c = self.counts
        t_m = self.model.time(m)
        t_1 = self.model.time(1)
        total = (
            c.n_noguess * t_m  # Calc guesses: block solve of the auxiliary system
            + c.cheb_order * t_m  # Cheb vectors: S(R) Z with m vectors
            + (m - 1) * c.n_first * t_1  # 1st solves with initial guesses
            + m * c.n_second * t_1  # 2nd (midpoint) solves
            + (m - 1) * c.cheb_order * t_1  # Cheb single for steps 1..m-1
        )
        return total / m

    def original_step_time(self) -> float:
        """Average step time of the original algorithm (no guesses).

        One unguessed solve (N iterations), one second solve seeded by
        the first (N2), and one single-vector Chebyshev application.
        """
        c = self.counts
        t_1 = self.model.time(1)
        return (c.n_noguess + c.n_second + c.cheb_order) * t_1

    def speedup(self, m: int) -> float:
        """Modelled speedup of MRHS over the original algorithm."""
        return self.original_step_time() / self.average_step_time(m)

    # ------------------------------------------------------------------
    # regime boundaries
    # ------------------------------------------------------------------
    def crossover_m(self, m_max: int = 256) -> Optional[int]:
        """``m_s``: where GSPMV flips from bandwidth- to compute-bound."""
        return self.model.crossover_m(m_max)

    def optimal_m(self, m_max: int = 64) -> int:
        """``m_optimal``: the ``m`` minimizing ``Tmrhs`` over 1..m_max."""
        best_m, best_t = 1, self.average_step_time(1)
        for m in range(2, m_max + 1):
            t = self.average_step_time(m)
            if t < best_t:
                best_m, best_t = m, t
        return best_m

    # ------------------------------------------------------------------
    # the closed-form regime expansions of Eqs. 11-12
    # ------------------------------------------------------------------
    def regime_constants(self) -> dict[str, float]:
        """Return the closed-form constants of the two regimes of Tmrhs.

        Expanding Eq. 9 with the bandwidth bound ``T(m) = (m*A(m)+C)/B``
        (``A(m) = (3+k(m))*sx*nb`` vector bytes per vector, ``C`` the
        m-independent matrix/index bytes) gives

            Tmrhs(m < m_s) = (3 + k(m)) * P + Q/m + R        (Eq. 11)

        with
            P = (N + Cmax) * sx * nb / B
            R = (N1 + N2 + Cmax) * T(1)
            Q = [(N + Cmax) * C] / B - (N1 + Cmax) * T(1)

        and with the compute bound ``T(m) = fa*m*nnzb/F``

            Tmrhs(m >= m_s) = W + R - V/m                    (Eq. 12)

        with
            W = (N + Cmax) * fa * nnzb / F
            V = (N1 + Cmax) * T(1).

        Note: these are the *exact* expansions of Eq. 9 (each equals
        :meth:`average_step_time` identically in its regime, which the
        test suite verifies).  The constants printed in the paper's
        Eqs. 11-12 differ slightly (e.g. its P includes an extra N2 and
        its S is missing a 1/B); the qualitative conclusion —
        decreasing for m < m_s, increasing after, minimum near m_s — is
        unchanged, and is what Table VIII and Figure 7 test.
        """
        c = self.counts
        shape = self.model.shape
        # The constants are exact for the bound model; with an engine
        # profile the effective rates and block traffic scale the same
        # way, keeping each expansion identical to average_step_time in
        # its regime (the profiled tests verify this too).
        prof = self.model.profile
        bw_scale = prof.bw_scale if prof is not None else 1.0
        flop_scale = prof.flop_scale if prof is not None else 1.0
        bts = prof.block_traffic_scale if prof is not None else 1.0
        B = self.machine.stream_bw * bw_scale
        F = self.machine.flop_rate * flop_scale
        sx, fa = shape.sx, shape.fa
        sa = shape.sa * bts
        nb, nnzb = shape.nb, shape.nnzb
        t1 = self.model.time_bandwidth(1)
        c_bytes = INDEX_BYTES * nb + nnzb * (INDEX_BYTES + sa)
        P = (c.n_noguess + c.cheb_order) * sx * nb / B
        R = (c.n_first + c.n_second + c.cheb_order) * t1
        Q = (c.n_noguess + c.cheb_order) * c_bytes / B - (
            c.n_first + c.cheb_order
        ) * t1
        W = (c.n_noguess + c.cheb_order) * fa * nnzb / F
        V = (c.n_first + c.cheb_order) * t1
        return {"P": P, "Q": Q, "R": R, "W": W, "V": V}

    def bandwidth_regime_time(self, m: int) -> float:
        """Eq. 11 evaluated directly (exact for ``m < m_s``)."""
        consts = self.regime_constants()
        k_m = self.model.k(m)
        return (3.0 + k_m) * consts["P"] + consts["Q"] / m + consts["R"]

    def compute_regime_time(self, m: int) -> float:
        """Eq. 12 evaluated directly (exact for ``m >= m_s``)."""
        consts = self.regime_constants()
        return consts["W"] + consts["R"] - consts["V"] / m
