"""Persistence: save/load matrices, particle systems, and run records.

NPZ-based, dependency-free serialization so workloads (e.g. the Table I
matrices, packed configurations that took minutes to relax) can be
built once and reused across benchmark sessions or shared between
machines.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.sparse.bcrs import BCRSMatrix
from repro.stokesian.particles import ParticleSystem

__all__ = [
    "save_bcrs",
    "load_bcrs",
    "save_system",
    "load_system",
]

PathLike = Union[str, Path]


def save_bcrs(path: PathLike, A: BCRSMatrix) -> None:
    """Serialize a BCRS matrix to ``.npz``."""
    np.savez_compressed(
        path,
        kind="bcrs",
        row_ptr=A.row_ptr,
        col_ind=A.col_ind,
        blocks=A.blocks,
        nb_cols=np.int64(A.nb_cols),
    )


def load_bcrs(path: PathLike) -> BCRSMatrix:
    """Load a BCRS matrix saved by :func:`save_bcrs`."""
    with np.load(path) as data:
        if str(data.get("kind", "")) != "bcrs":
            raise ValueError(f"{path} does not contain a BCRS matrix")
        return BCRSMatrix(
            row_ptr=data["row_ptr"],
            col_ind=data["col_ind"],
            blocks=data["blocks"],
            nb_cols=int(data["nb_cols"]),
        )


def save_system(path: PathLike, system: ParticleSystem) -> None:
    """Serialize a particle system to ``.npz``."""
    np.savez_compressed(
        path,
        kind="particle_system",
        positions=system.positions,
        radii=system.radii,
        box=system.box,
    )


def load_system(path: PathLike) -> ParticleSystem:
    """Load a particle system saved by :func:`save_system`."""
    with np.load(path) as data:
        if str(data.get("kind", "")) != "particle_system":
            raise ValueError(f"{path} does not contain a particle system")
        return ParticleSystem(
            positions=data["positions"],
            radii=data["radii"],
            box=data["box"],
        )
