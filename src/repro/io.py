"""Persistence: save/load matrices, particle systems, and run records.

NPZ-based, dependency-free serialization so workloads (e.g. the Table I
matrices, packed configurations that took minutes to relax) can be
built once and reused across benchmark sessions or shared between
machines.

All writers go through :func:`atomic_savez`: the archive is written to
a temporary file in the destination directory, flushed to disk, and
moved into place with ``os.replace`` — a crash mid-write can never
leave a truncated, unloadable file under the destination name (the
resilience layer's checkpoints depend on the same guarantee).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.resources.iofaults import check_io_faults
from repro.sparse.bcrs import BCRSMatrix
from repro.stokesian.particles import ParticleSystem

__all__ = [
    "atomic_savez",
    "atomic_write_text",
    "fsync_dir",
    "save_bcrs",
    "load_bcrs",
    "save_system",
    "load_system",
]

PathLike = Union[str, Path]


def fsync_dir(path: PathLike) -> None:
    """fsync the directory containing ``path``.

    ``os.replace`` makes the rename atomic but not durable: the new
    directory entry lives in the parent's metadata, which the kernel is
    free to hold in cache until the *directory* is fsynced.  Without
    this, a power loss after a "successful" atomic write can roll the
    destination back to its previous content (or to nothing).
    """
    parent = Path(path).parent or Path(".")
    fd = os.open(parent, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_savez(
    path: PathLike,
    *,
    compress: bool = True,
    fsync: bool = True,
    **arrays: np.ndarray,
) -> Path:
    """``np.savez(_compressed)`` with write-to-temp + ``os.replace``.

    The temporary file lives in the destination directory so the final
    rename stays within one filesystem (and therefore atomic).  On any
    failure the temporary file is removed and the destination — if it
    existed — is left untouched.

    ``compress=False`` and ``fsync=False`` trade durability-vs-speed:
    checkpoints use both because their cost budget is a few percent of
    one time step, their threat model is process death (where the page
    cache survives), and torn disk state is caught by the checkpoint
    checksum plus the keep-K retention fallback.  Long-lived artifacts
    (matrices, packed configurations) keep the durable defaults.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    writer = np.savez_compressed if compress else np.savez
    try:
        with os.fdopen(fd, "wb") as fh:
            check_io_faults(path, writer="atomic_savez")
            writer(fh, **arrays)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_dir(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_text(
    path: PathLike, text: str, *, fsync: bool = True
) -> Path:
    """Write ``text`` with the same write-to-temp + ``os.replace``
    guarantee as :func:`atomic_savez` (used for job-spec drop files)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            check_io_faults(path, writer="atomic_write_text")
            fh.write(text)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_dir(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def save_bcrs(path: PathLike, A: BCRSMatrix) -> None:
    """Serialize a BCRS matrix to ``.npz`` (atomically)."""
    atomic_savez(
        path,
        kind="bcrs",
        row_ptr=A.row_ptr,
        col_ind=A.col_ind,
        blocks=A.blocks,
        nb_cols=np.int64(A.nb_cols),
    )


def load_bcrs(path: PathLike) -> BCRSMatrix:
    """Load a BCRS matrix saved by :func:`save_bcrs`."""
    with np.load(path) as data:
        if str(data.get("kind", "")) != "bcrs":
            raise ValueError(f"{path} does not contain a BCRS matrix")
        return BCRSMatrix(
            row_ptr=data["row_ptr"],
            col_ind=data["col_ind"],
            blocks=data["blocks"],
            nb_cols=int(data["nb_cols"]),
        )


def save_system(path: PathLike, system: ParticleSystem) -> None:
    """Serialize a particle system to ``.npz`` (atomically)."""
    atomic_savez(
        path,
        kind="particle_system",
        positions=system.positions,
        radii=system.radii,
        box=system.box,
    )


def load_system(path: PathLike) -> ParticleSystem:
    """Load a particle system saved by :func:`save_system`."""
    with np.load(path) as data:
        if str(data.get("kind", "")) != "particle_system":
            raise ValueError(f"{path} does not contain a particle system")
        return ParticleSystem(
            positions=data["positions"],
            radii=data["radii"],
            box=data["box"],
        )
