"""Shared utilities: deterministic RNG plumbing, timers, table rendering.

These helpers are deliberately tiny and dependency-free so that every
other subpackage (sparse kernels, performance model, Stokesian dynamics)
can import them without cycles.
"""

from repro.util.rng import as_rng, rng_from_json, rng_state_to_json, spawn_rngs
from repro.util.timer import Stopwatch, TimingRecord
from repro.util.tables import format_table, format_row
from repro.util.validation import (
    check_finite,
    check_positive,
    check_shape,
    check_square_blocks,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "rng_state_to_json",
    "rng_from_json",
    "Stopwatch",
    "TimingRecord",
    "format_table",
    "format_row",
    "check_finite",
    "check_positive",
    "check_shape",
    "check_square_blocks",
]
