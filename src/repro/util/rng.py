"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either a
seed, ``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`,
and normalizes it through :func:`as_rng`.  Simulations that need several
independent streams (e.g. one per simulated MPI rank) use
:func:`spawn_rngs`, which derives child generators via
``numpy.random.SeedSequence.spawn`` so streams never overlap.
"""

from __future__ import annotations

import json
from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an integer seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__!r} as an RNG")


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``rng``.

    The parent generator (if one was passed) is *not* consumed; a child
    ``SeedSequence`` is drawn from its bit generator state instead.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if isinstance(rng, np.random.Generator):
        seeds = rng.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = rng if isinstance(rng, np.random.SeedSequence) else np.random.SeedSequence(rng)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def standard_normal_matrix(
    rng: RngLike, n: int, m: int, dtype: np.dtype = np.float64
) -> np.ndarray:
    """Return an ``n x m`` standard-normal matrix (the ``Z`` of Algorithm 2)."""
    gen = as_rng(rng)
    return gen.standard_normal((n, m)).astype(dtype, copy=False)


def rng_state_to_json(rng: np.random.Generator) -> str:
    """Serialize a generator's bit-generator state exactly (JSON ints).

    The checkpoint layer stores this string so a resumed run continues
    the *same* noise sequence bit-for-bit.
    """
    return json.dumps(rng.bit_generator.state)


def rng_from_json(payload: str) -> np.random.Generator:
    """Rebuild the generator serialized by :func:`rng_state_to_json`."""
    state = json.loads(payload)
    name = state.get("bit_generator", "PCG64")
    bitgen_cls = getattr(np.random, name, None)
    if bitgen_cls is None:
        raise ValueError(f"unknown bit generator {name!r}")
    bitgen = bitgen_cls()
    bitgen.state = state
    return np.random.Generator(bitgen)
