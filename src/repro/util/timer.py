"""Wall-clock timing helpers.

:class:`Stopwatch` accumulates named phase durations; the MRHS driver
uses one to produce the per-phase breakdowns of Tables VI and VII
("Cheb vectors", "Calc guesses", "Cheb single", "1st solve", "2nd solve").
:class:`TimingRecord` is the immutable result of one timing session.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Set


@dataclass(frozen=True)
class TimingRecord:
    """Immutable snapshot of accumulated phase timings (seconds)."""

    phases: Mapping[str, float]
    counts: Mapping[str, int]

    def total(self) -> float:
        # fsum over sorted keys: exact and order-independent, so
        # a.merged(b).total() == b.merged(a).total() regardless of dict
        # insertion order.
        return math.fsum(self.phases[k] for k in sorted(self.phases))

    def fraction(self, phase: str) -> float:
        """Fraction of total time spent in ``phase`` (0 if total is 0)."""
        tot = self.total()
        return self.phases.get(phase, 0.0) / tot if tot > 0 else 0.0

    def mean(self, phase: str) -> float:
        """Mean duration of one occurrence of ``phase``."""
        c = self.counts.get(phase, 0)
        return self.phases.get(phase, 0.0) / c if c else 0.0

    def merged(self, other: "TimingRecord") -> "TimingRecord":
        phases: Dict[str, float] = dict(self.phases)
        counts: Dict[str, int] = dict(self.counts)
        for k, v in other.phases.items():
            phases[k] = phases.get(k, 0.0) + v
        for k, c in other.counts.items():
            counts[k] = counts.get(k, 0) + c
        return TimingRecord(phases=phases, counts=counts)

    def to_json(self) -> str:
        """Round-trippable JSON (benchmark reports, telemetry sidecars)."""
        return json.dumps(
            {"phases": dict(self.phases), "counts": dict(self.counts)},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "TimingRecord":
        data = json.loads(text)
        return cls(
            phases={str(k): float(v) for k, v in data["phases"].items()},
            counts={str(k): int(v) for k, v in data["counts"].items()},
        )


@dataclass
class Stopwatch:
    """Accumulates wall-clock time per named phase.

    Use as::

        sw = Stopwatch()
        with sw.phase("1st solve"):
            ...

    Nested phases of *different* names are allowed and accumulate
    independently; re-entering a phase that is still running raises
    (the inner exit would double-count the overlapped wall-clock).
    """

    _elapsed: Dict[str, float] = field(default_factory=dict)
    _counts: Dict[str, int] = field(default_factory=dict)
    _active: Set[str] = field(default_factory=set)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if name in self._active:
            raise RuntimeError(
                f"Stopwatch phase {name!r} is already running; re-entrant "
                f"phase() of the same name would double-count its time"
            )
        self._active.add(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            self._active.discard(name)
            dur = time.perf_counter() - start
            self._elapsed[name] = self._elapsed.get(name, 0.0) + dur
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` of (possibly simulated) time against ``name``."""
        if seconds < 0:
            raise ValueError("cannot record negative time")
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count

    def elapsed(self, name: str) -> float:
        return self._elapsed.get(name, 0.0)

    def record(self) -> TimingRecord:
        return TimingRecord(phases=dict(self._elapsed), counts=dict(self._counts))

    def reset(self) -> None:
        self._elapsed.clear()
        self._counts.clear()
        self._active.clear()
