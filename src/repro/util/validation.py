"""Argument-validation helpers shared across subpackages.

Raising early with a precise message is the library's convention: every
public constructor validates its inputs through these helpers rather
than letting NumPy produce an opaque broadcasting error three calls
deeper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_shape(name: str, arr: np.ndarray, shape: Sequence[int | None]) -> np.ndarray:
    """Validate ``arr.shape`` against ``shape`` (``None`` = any extent).

    Also rejects non-numeric dtypes (object, str, ...): an array of the
    right shape but the wrong kind still produces opaque errors three
    calls deeper, which is exactly what these helpers exist to prevent.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind not in "biufc":
        raise ValueError(
            f"{name} must have a numeric dtype, got dtype {arr.dtype}"
        )
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim}"
        )
    for axis, (got, want) in enumerate(zip(arr.shape, shape)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} has shape {arr.shape}; expected extent {want} on axis {axis}"
            )
    return arr


def check_finite(name: str, arr: np.ndarray) -> np.ndarray:
    """Validate that every entry of ``arr`` is finite (no NaN/inf).

    The message names the count and the first offending index, so a
    poisoned checkpoint or a diverged solve is traceable to the exact
    entry.  Integer and boolean arrays pass trivially; object arrays
    are rejected as non-numeric.
    """
    arr = np.asarray(arr)
    if arr.dtype.kind not in "biufc":
        raise ValueError(
            f"{name} must have a numeric dtype, got dtype {arr.dtype}"
        )
    if arr.dtype.kind in "fc":
        bad = ~np.isfinite(arr)
        if bad.any():
            flat = np.flatnonzero(bad.reshape(-1))
            first = np.unravel_index(int(flat[0]), arr.shape or (1,))
            raise ValueError(
                f"{name} has {int(bad.sum())} non-finite entries "
                f"(first at index {tuple(int(i) for i in first)})"
            )
    return arr


def check_square_blocks(name: str, blocks: np.ndarray, block_size: int) -> np.ndarray:
    """Validate a ``(nnzb, b, b)`` array of square blocks."""
    blocks = np.asarray(blocks)
    if blocks.ndim != 3 or blocks.shape[1] != block_size or blocks.shape[2] != block_size:
        raise ValueError(
            f"{name} must have shape (nnzb, {block_size}, {block_size}), got {blocks.shape}"
        )
    return blocks


def check_index_array(name: str, arr: np.ndarray, upper: int) -> np.ndarray:
    """Validate an integer index array with entries in ``[0, upper)``."""
    arr = np.asarray(arr)
    if arr.dtype.kind not in "iu":
        raise ValueError(f"{name} must be an integer array, got dtype {arr.dtype}")
    if arr.size and (arr.min() < 0 or arr.max() >= upper):
        raise ValueError(f"{name} entries must lie in [0, {upper})")
    return arr
