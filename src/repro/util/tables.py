"""Plain-text table rendering for benchmark harnesses.

Every bench target prints the same rows/series the paper reports; these
helpers keep the formatting consistent (fixed-width columns, right-
aligned numerics) so outputs are easy to eyeball against the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _fmt_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """Format one row with per-column widths."""
    if len(cells) != len(widths):
        raise ValueError("cells and widths must have equal length")
    return "  ".join(_fmt_cell(c, w) for c, w in zip(cells, widths))


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table with a rule under the header."""
    rows = [list(r) for r in rows]
    ncol = len(headers)
    for r in rows:
        if len(r) != ncol:
            raise ValueError("row length does not match header length")
    widths = [len(h) for h in headers]
    rendered_rows = []
    for r in rows:
        rendered = []
        for j, cell in enumerate(r):
            text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
            widths[j] = max(widths[j], len(text))
            rendered.append(text)
        rendered_rows.append(rendered)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
