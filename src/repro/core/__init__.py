"""The paper's contribution: the Multiple Right-Hand Sides algorithm.

* :mod:`repro.core.mrhs` — Algorithm 2: at the start of every chunk of
  ``m`` time steps, one *augmented* system with ``m`` right-hand sides
  is solved by block CG (cheap, because its iterations use GSPMV); its
  solutions are the first step's velocity and initial guesses for the
  remaining ``m - 1`` steps;
* :mod:`repro.core.original` — the side-by-side comparison runner
  (Algorithm 1 vs Algorithm 2 on identical noise streams);
* :mod:`repro.core.timing` — aggregation of per-step records into the
  Tables V/VI/VII rows;
* :mod:`repro.core.schedule` — policies choosing the number of
  right-hand sides ``m`` (fixed, model-driven via ``m_s``, adaptive);
* :mod:`repro.core.optimal_m` — the empirical ``m`` sweep behind
  Table VIII and Figure 7.
"""

from repro.core.mrhs import MrhsParameters, ChunkRecord, MrhsStokesianDynamics
from repro.core.auto import AutoMrhsStokesianDynamics
from repro.core.original import ComparisonResult, run_comparison
from repro.core.timing import (
    average_breakdown,
    iterations_table,
    guess_error_series,
)
from repro.core.schedule import FixedM, ModelDrivenM, AdaptiveM
from repro.core.optimal_m import MSweepResult, sweep_m

__all__ = [
    "MrhsParameters",
    "ChunkRecord",
    "MrhsStokesianDynamics",
    "AutoMrhsStokesianDynamics",
    "ComparisonResult",
    "run_comparison",
    "average_breakdown",
    "iterations_table",
    "guess_error_series",
    "FixedM",
    "ModelDrivenM",
    "AdaptiveM",
    "MSweepResult",
    "sweep_m",
]
