"""Policies for choosing the number of right-hand sides ``m``.

"The parameter m may be larger or smaller depending on how R_k evolves
and on the incremental cost of GSPMV for additional vectors."
(Section III.)  Three policies:

* :class:`FixedM` — a constant (the paper's experiments use 16);
* :class:`ModelDrivenM` — the Section V.B.3 result: pick ``m`` at the
  GSPMV bandwidth->compute crossover ``m_s`` predicted by the
  performance model for the actual matrix and machine;
* :class:`AdaptiveM` — measurement-driven hill climbing on the observed
  average step time, for when no machine model is trusted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.roofline import GspmvTimeModel
from repro.sparse.bcrs import BCRSMatrix

__all__ = ["FixedM", "ModelDrivenM", "AdaptiveM"]


@dataclass(frozen=True)
class FixedM:
    """Always use the same chunk size."""

    m: int = 16

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")

    def choose(self, A: Optional[BCRSMatrix] = None) -> int:
        return self.m


@dataclass(frozen=True)
class ModelDrivenM:
    """Pick ``m = m_s`` (the roofline crossover) for a given machine.

    Table VIII shows the empirically best m sits at or just below m_s;
    ``offset`` lets callers bias accordingly (the paper's measured
    m_optimal is m_s - 1 ... m_s - 2).
    """

    machine: MachineSpec
    offset: int = -1
    m_min: int = 1
    m_max: int = 64

    def choose(self, A: BCRSMatrix) -> int:
        model = GspmvTimeModel(A, self.machine)
        ms = model.crossover_m(self.m_max)
        if ms is None:
            # Never compute-bound: every extra vector is nearly free;
            # cap at m_max (guess quality decay is the only limit).
            return self.m_max
        return max(self.m_min, min(self.m_max, ms + self.offset))


@dataclass
class AdaptiveM:
    """Hill-climb ``m`` on measured average step times.

    Feed each chunk's measured per-step time to :meth:`observe`; the
    policy doubles ``m`` while times improve and backs off (and pins)
    when they regress — a pragmatic scheme for machines without a
    calibrated model.
    """

    m: int = 4
    m_max: int = 64
    _last_time: Optional[float] = field(default=None, repr=False)
    _direction: int = field(default=+1, repr=False)
    _pinned: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.m < 1 or self.m_max < self.m:
            raise ValueError("need 1 <= m <= m_max")

    def choose(self, A: Optional[BCRSMatrix] = None) -> int:
        return self.m

    def observe(self, avg_step_time: float) -> None:
        """Report the measured amortized step time of the last chunk."""
        if avg_step_time <= 0:
            raise ValueError("avg_step_time must be positive")
        if self._pinned:
            return
        if self._last_time is None or avg_step_time < self._last_time:
            self._last_time = avg_step_time
            nxt = self.m * 2 if self._direction > 0 else max(1, self.m // 2)
            self.m = min(self.m_max, nxt)
        else:
            # Regression: step back once and stop exploring.
            self.m = max(1, self.m // 2 if self._direction > 0 else self.m * 2)
            self._pinned = True
