"""Empirical m sweep: the Table VIII / Figure 7 experiment.

For each candidate ``m``, run the MRHS driver for one or more chunks
from the same initial state and record the amortized per-step time.
The sweep's argmin is the empirical ``m_optimal``; alongside it we
report the model's crossover ``m_s`` for the same matrix, which the
paper shows (Table VIII) to be within 1-3 of the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.mrhs import MrhsParameters, MrhsStokesianDynamics
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.mrhs_model import SolverCounts
from repro.perfmodel.roofline import GspmvTimeModel
from repro.stokesian.dynamics import SDParameters
from repro.stokesian.particles import ParticleSystem
from repro.stokesian.resistance import build_resistance_matrix

__all__ = ["MSweepResult", "sweep_m", "solver_counts_from_run"]


@dataclass(frozen=True)
class MSweepResult:
    """Outcome of an m sweep on one physical system."""

    m_values: List[int]
    measured_step_times: List[float]
    m_optimal: int
    m_s: Optional[int]
    """Model crossover for the same matrix/machine (None = never
    compute-bound up to the sweep maximum)."""

    def as_rows(self) -> List[tuple[int, float]]:
        return list(zip(self.m_values, self.measured_step_times))


def sweep_m(
    system: ParticleSystem,
    params: SDParameters,
    m_values: Sequence[int],
    *,
    machine: MachineSpec,
    chunks_per_m: int = 1,
    rng_seed: int = 0,
) -> MSweepResult:
    """Measure the amortized step time of MRHS for each ``m``.

    Every candidate starts from the same configuration and noise seed,
    so times are comparable.  ``machine`` is only used for the model's
    ``m_s`` column (measurements are host wall-clock).
    """
    if not m_values:
        raise ValueError("m_values must be non-empty")
    times: List[float] = []
    for m in m_values:
        driver = MrhsStokesianDynamics(
            system, params, MrhsParameters(m=int(m)), rng=rng_seed
        )
        driver.run(chunks_per_m)
        times.append(driver.average_step_time())
    best = int(np.argmin(times))
    R = build_resistance_matrix(
        system, viscosity=params.viscosity, cutoff_gap=params.cutoff_gap
    )
    ms = GspmvTimeModel(R, machine).crossover_m(int(max(m_values)) * 4)
    return MSweepResult(
        m_values=[int(m) for m in m_values],
        measured_step_times=times,
        m_optimal=int(m_values[best]),
        m_s=ms,
    )


def solver_counts_from_run(
    driver: MrhsStokesianDynamics, original_steps
) -> SolverCounts:
    """Extract the (N, N1, N2, Cmax) of an actual simulation pair.

    Feeds the analytic :class:`MrhsCostModel` with iteration counts
    measured from real runs — how Figure 7's predicted curve is
    parameterized (the paper uses N=162, N1=80, N2=63, Cmax=30 from its
    300k/50% system).
    """
    guessed = [
        s.iterations_first for c in driver.chunks for s in c.steps[1:]
    ]
    second = [s.iterations_second for c in driver.chunks for s in c.steps]
    unguessed = [s.iterations_first for s in original_steps]
    if not (guessed and second and unguessed):
        raise ValueError("need at least one chunk of both runs")
    n = int(round(float(np.mean(unguessed))))
    n1 = int(round(float(np.mean(guessed))))
    n2 = int(round(float(np.mean(second))))
    return SolverCounts(
        n_noguess=max(n, 1),
        n_first=min(n1, max(n, 1)),
        n_second=n2,
        cheb_order=driver.params.cheb_degree,
    )
