"""Aggregating step/chunk records into the paper's table rows.

Tables VI and VII print, for each configuration, the average seconds
per time step spent in each phase: "Cheb vectors", "Calc guesses",
"Cheb single", "1st solve", "2nd solve", and the overall "Average".
These helpers compute those rows from the drivers' records.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.mrhs import ChunkRecord
from repro.stokesian.dynamics import StepRecord

__all__ = ["average_breakdown", "iterations_table", "guess_error_series"]

#: Phase rows in the order the paper prints them (Tables VI/VII).
PAPER_PHASES = ("Cheb vectors", "Calc guesses", "Cheb single", "1st solve", "2nd solve")


def average_breakdown(
    chunks: Optional[Sequence[ChunkRecord]] = None,
    steps: Optional[Sequence[StepRecord]] = None,
) -> Dict[str, float]:
    """Average per-step seconds by phase.

    Pass ``chunks`` for an MRHS run (chunk phases are amortized over
    the chunk's ``m`` steps) or ``steps`` for an original-algorithm run
    (whose records have no chunk phases — those rows come back 0.0,
    printed as "-" by the benches, as in the paper).
    """
    if (chunks is None) == (steps is None):
        raise ValueError("pass exactly one of chunks or steps")
    totals = {p: 0.0 for p in PAPER_PHASES}
    totals["Average"] = 0.0
    if chunks is not None:
        n_steps = sum(c.m for c in chunks)
        if n_steps == 0:
            return totals
        for c in chunks:
            for p in ("Cheb vectors", "Calc guesses"):
                totals[p] += c.chunk_timings.phases.get(p, 0.0)
            for s in c.steps:
                for p in ("Cheb single", "1st solve", "2nd solve"):
                    totals[p] += s.timings.phases.get(p, 0.0)
            totals["Average"] += c.total_time()
    else:
        n_steps = len(steps)
        if n_steps == 0:
            return totals
        for s in steps:
            for p in ("Cheb single", "1st solve", "2nd solve"):
                totals[p] += s.timings.phases.get(p, 0.0)
            totals["Average"] += s.timings.total()
    return {k: v / n_steps for k, v in totals.items()}


def iterations_table(
    with_guesses: Sequence[StepRecord],
    without_guesses: Sequence[StepRecord],
    step_indices: Iterable[int],
) -> List[tuple[int, int, int]]:
    """Rows of Table V: (step, iterations with, iterations without).

    ``step_indices`` selects which steps to print (the paper samples
    every second step from 2 to 24).
    """
    rows = []
    for idx in step_indices:
        w = with_guesses[idx].iterations_first if idx < len(with_guesses) else -1
        wo = without_guesses[idx].iterations_first if idx < len(without_guesses) else -1
        rows.append((idx, w, wo))
    return rows


def guess_error_series(chunks: Sequence[ChunkRecord]) -> List[float]:
    """Concatenated per-step guess errors (Figure 5's y values).

    Steps whose guess error is unavailable (e.g. degenerate norm) are
    reported as ``nan`` so positions stay aligned with step indices.
    """
    out: List[float] = []
    for c in chunks:
        for s in c.steps:
            out.append(float("nan") if s.guess_error is None else s.guess_error)
    return out
