"""Self-tuning MRHS: choose the chunk size per chunk with a policy.

"The above procedure is of course extended to as many right-hand sides
as is profitable.  The parameter m may be larger or smaller depending
on how R_k evolves and on the incremental cost of GSPMV for additional
vectors." (Section III.)  :class:`AutoMrhsStokesianDynamics` closes the
loop: before each chunk it asks an m-selection policy
(:mod:`repro.core.schedule`) for the chunk size — model-driven policies
see the current resistance matrix, adaptive policies see the measured
amortized step times — and runs the chunk at that size.
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.mrhs import ChunkRecord, MrhsParameters, MrhsStokesianDynamics
from repro.core.schedule import AdaptiveM
from repro.solvers.diagnostics import SolveDiagnostics
from repro.stokesian.dynamics import SDParameters
from repro.stokesian.particles import ParticleSystem
from repro.util.rng import RngLike

__all__ = ["AutoMrhsStokesianDynamics"]

logger = logging.getLogger(__name__)


class AutoMrhsStokesianDynamics:
    """MRHS with per-chunk m selection.

    Parameters
    ----------
    system, params, rng, forces:
        As for :class:`MrhsStokesianDynamics`.
    policy:
        Any object with ``choose(matrix) -> int`` (``FixedM``,
        ``ModelDrivenM``, ``AdaptiveM``).  If it also has ``observe``,
        it is fed each chunk's measured amortized step time.
    m_cap:
        Hard upper bound on the chunk size regardless of policy.
    """

    def __init__(
        self,
        system: ParticleSystem,
        params: SDParameters = SDParameters(),
        *,
        policy=None,
        m_cap: int = 64,
        rng: RngLike = None,
        forces=None,
        telemetry=None,
    ) -> None:
        if m_cap < 1:
            raise ValueError("m_cap must be >= 1")
        self.policy = policy if policy is not None else AdaptiveM(m=4, m_max=m_cap)
        self.m_cap = int(m_cap)
        from repro.telemetry import NULL_HUB

        self._driver = MrhsStokesianDynamics(
            system, params, MrhsParameters(m=1), rng=rng, forces=forces,
            telemetry=NULL_HUB if telemetry is None else telemetry,
        )
        self.chosen_ms: List[int] = []
        self.block_diagnostics: List[Optional[SolveDiagnostics]] = []
        """Per-chunk auxiliary-solve diagnostics, aligned with
        :attr:`chosen_ms` (robustness telemetry for the m policy)."""

    # ------------------------------------------------------------------
    @property
    def system(self) -> ParticleSystem:
        return self._driver.system

    @property
    def chunks(self) -> List[ChunkRecord]:
        return self._driver.chunks

    def run_chunk(self) -> ChunkRecord:
        """Choose m for the current state, then advance one chunk."""
        R = self._driver.sd.build_matrix()
        m = int(self.policy.choose(R))
        m = max(1, min(self.m_cap, m))
        self.chosen_ms.append(m)
        record = self._driver.run_chunk(m=m)
        diag = record.block_diagnostics
        self.block_diagnostics.append(diag)
        if diag is not None:
            logger.debug(
                "chunk %d (m=%d): %s", record.chunk_index, m, diag.summary()
            )
            if record.fallback_columns:
                logger.warning(
                    "chunk %d (m=%d): block solve needed single-RHS "
                    "fallback on columns %s",
                    record.chunk_index, m, record.fallback_columns,
                )
        observe = getattr(self.policy, "observe", None)
        if observe is not None:
            observe(record.average_step_time())
        return record

    def run(self, n_chunks: int) -> List[ChunkRecord]:
        if n_chunks < 0:
            raise ValueError("n_chunks must be non-negative")
        return [self.run_chunk() for _ in range(n_chunks)]

    def total_steps(self) -> int:
        return sum(c.m for c in self.chunks)

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Serializable state: the inner driver plus the m history.

        The policy object itself is not serialized (policies may hold
        arbitrary callables); pass an equivalently-configured policy to
        :meth:`from_state` when resuming.
        """
        return {
            "kind": "auto",
            "driver": self._driver.get_state(),
            "chosen_ms": np.array(self.chosen_ms, dtype=np.int64),
            "m_cap": self.m_cap,
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != "auto":
            raise ValueError(
                f"not an AutoMrhsStokesianDynamics state: {state.get('kind')!r}"
            )
        self._driver.set_state(state["driver"])
        self.m_cap = int(state["m_cap"])
        self.chosen_ms = [int(v) for v in state["chosen_ms"]]
        self.block_diagnostics = [None] * len(self.chosen_ms)

    @classmethod
    def from_state(
        cls, state: Dict[str, Any], *, policy=None, forces=None, telemetry=None
    ) -> "AutoMrhsStokesianDynamics":
        from repro.telemetry import NULL_HUB

        driver = MrhsStokesianDynamics.from_state(
            state["driver"], forces=forces,
            telemetry=NULL_HUB if telemetry is None else telemetry,
        )
        obj = cls.__new__(cls)
        obj.policy = policy
        obj.m_cap = int(state["m_cap"])
        obj._driver = driver
        obj.chosen_ms = [int(v) for v in state["chosen_ms"]]
        obj.block_diagnostics = [None] * len(obj.chosen_ms)
        if policy is None:
            obj.policy = AdaptiveM(m=4, m_max=obj.m_cap)
        return obj
