"""Algorithm 2: Stokesian dynamics with Multiple Right-Hand Sides.

The key obstacle the paper overcomes: in a dynamical simulation the
right-hand sides arrive *sequentially* — step k+1's system cannot be
formed until step k is done — so a block solver seems inapplicable.
The trick (Section III): at two consecutive steps the systems

    R_k     u_k     = -f^B_k     = -S(R_k) z_k
    R_{k+1} u_{k+1} = -f^B_{k+1} = -S(R_{k+1}) z_{k+1}

have *different* right-hand sides but *nearly identical* matrices
(particles move slowly).  All the noise vectors z_k are available up
front, so one can solve the **augmented system**

    R_0 [u_0, u'_1, ..., u'_{m-1}] = -S(R_0) [z_0, z_1, ..., z_{m-1}]

with a block method.  Column 0 is the exact solution for step 0; the
other columns are the solutions the later steps *would* have if the
matrix did not change — excellent initial guesses, degrading only as
sqrt(step) like the Brownian displacement itself (Figure 5).

The block solve and the block Chebyshev application are cheap because
every iteration is one GSPMV with ``m`` vectors (~2x a single SPMV for
m = 8-16), while the saved CG iterations are full single-vector solves.

One chunk of ``m`` steps:

    1. Construct R_0
    2. F^B = S(R_0) Z                       (Cheb vectors,  GSPMV)
    3. Solve R_0 U = -F^B by block CG       (Calc guesses,  GSPMV)
    4-6.  advance step 0 using u_0
    7-14. for k = 1 .. m-1: advance step k, seeding the first solve
          with u'_k  (Cheb single / 1st solve / 2nd solve)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.resilience.faults import BlockSolveBroken, fire_fault
from repro.solvers.block_cg import BlockCGResult, block_conjugate_gradient
from repro.solvers.cg import conjugate_gradient
from repro.solvers.diagnostics import SolveDiagnostics
from repro.stokesian.dynamics import (
    SDParameters,
    StepRecord,
    StokesianDynamics,
    records_from_state,
    records_to_state,
)
from repro.stokesian.particles import ParticleSystem
from repro.telemetry import NULL_HUB, NULL_SPAN, TelemetryHub
from repro.util.rng import RngLike
from repro.util.timer import Stopwatch, TimingRecord

__all__ = ["MrhsParameters", "ChunkRecord", "MrhsStokesianDynamics"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MrhsParameters:
    """MRHS-specific knobs on top of :class:`SDParameters`."""

    m: int = 16
    """Number of right-hand sides per chunk (the paper's experiments use
    16; the best value sits near the GSPMV bandwidth/compute crossover,
    see Table VIII)."""
    block_tol: Optional[float] = None
    """Relative tolerance of the auxiliary block solve (defaults to the
    in-step solver tolerance)."""

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.block_tol is not None and not 0 < self.block_tol < 1:
            raise ValueError("block_tol must be in (0, 1)")


@dataclass(frozen=True)
class ChunkRecord:
    """Everything that happened in one chunk of ``m`` steps."""

    chunk_index: int
    m: int
    block_iterations: int
    block_gspmv_calls: int
    block_converged: bool
    steps: List[StepRecord]
    chunk_timings: TimingRecord
    """Phases amortized over the chunk: "Construct R0", "Cheb vectors",
    "Calc guesses"."""
    block_diagnostics: Optional[SolveDiagnostics] = None
    """Convergence record of the auxiliary block solve (restarts,
    breakdowns, per-column residual history)."""
    fallback_columns: List[int] = field(default_factory=list)
    """Guess columns re-solved by single-RHS CG after the block solve
    reported breakdown or failed its true-residual check."""
    degradations: List[int] = field(default_factory=list)
    """Chunk sizes this chunk was degraded *to* (``m -> m/2 -> ...``)
    after repeated block-solve breakdown; empty for a healthy chunk.
    The recorded :attr:`m` is the size the chunk actually ran at."""
    retries: int = 0
    """In-chunk step retries performed by a resilient runner (dt
    backoff after non-finite positions or overlaps)."""
    quarantined: bool = False
    """True when the block solutions were discarded mid-chunk and the
    remaining steps fell back to cold-start CG (poisoned guesses)."""
    quarantine_reason: str = ""

    @property
    def guess_errors(self) -> List[Optional[float]]:
        """Per-step relative error of the block-solve initial guess
        (the Figure 5 observable)."""
        return [s.guess_error for s in self.steps]

    @property
    def first_solve_iterations(self) -> List[int]:
        """Per-step 1st-solve iterations (the Figure 6 observable)."""
        return [s.iterations_first for s in self.steps]

    def total_time(self) -> float:
        return self.chunk_timings.total() + sum(
            s.timings.total() for s in self.steps
        )

    def average_step_time(self) -> float:
        """The Tables VI/VII bottom row: chunk cost amortized per step."""
        return self.total_time() / self.m


@dataclass
class _PendingChunk:
    """Mutable mid-chunk state (checkpointable, see :meth:`get_state`).

    Exists from :meth:`MrhsStokesianDynamics.begin_chunk` (block solve
    done) until the last in-chunk step completes, at which point it is
    frozen into a :class:`ChunkRecord`.
    """

    chunk_index: int
    m: int
    Z: np.ndarray
    U: np.ndarray
    block_iterations: int
    block_gspmv_calls: int
    block_converged: bool
    block_diagnostics: Optional[SolveDiagnostics]
    fallback_columns: List[int]
    chunk_timings: TimingRecord
    steps: List[StepRecord] = field(default_factory=list)
    k: int = 0
    retries: int = 0
    degradations: List[int] = field(default_factory=list)
    quarantined: bool = False
    quarantine_reason: str = ""


class MrhsStokesianDynamics:
    """Algorithm 2 driver.

    Owns a :class:`StokesianDynamics` instance and reuses all of its
    components — same matrix assembly, same Brownian generator, same CG
    — changing only where the first solve's initial guess comes from.

    Parameters
    ----------
    system:
        Initial configuration.
    params:
        Shared SD parameters.
    mrhs:
        MRHS parameters (chunk size ``m``).
    rng:
        Noise stream (same semantics as the original driver, so the two
        algorithms can be run on identical noise).
    """

    def __init__(
        self,
        system: ParticleSystem,
        params: SDParameters = SDParameters(),
        mrhs: MrhsParameters = MrhsParameters(),
        *,
        rng: RngLike = None,
        forces=None,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        self.sd = StokesianDynamics(
            system, params, rng=rng, forces=forces, telemetry=telemetry
        )
        self.mrhs = mrhs
        self.chunks: List[ChunkRecord] = []
        self._pending: Optional[_PendingChunk] = None
        self._chunk_span = NULL_SPAN
        """The open span of the pending chunk (steps nest under it)."""

    @property
    def telemetry(self) -> TelemetryHub:
        return self.sd.telemetry

    # ------------------------------------------------------------------
    @property
    def system(self) -> ParticleSystem:
        return self.sd.system

    @property
    def params(self) -> SDParameters:
        return self.sd.params

    # ------------------------------------------------------------------
    def _solve_block(
        self, R0, rhs: np.ndarray, *, chunk_index: Optional[int] = None
    ) -> tuple[BlockCGResult, List[int]]:
        """Run the augmented block solve with single-RHS CG fallback.

        When the block solve reports breakdown or fails to converge,
        every column whose true residual misses the tolerance is
        re-solved by plain CG (seeded with the block solve's partial
        solution).  Returns the (possibly repaired) result and the list
        of fallback column indices.

        Raises :class:`~repro.resilience.faults.BlockSolveBroken` when
        an armed fault plan targets ``mrhs.block_breakdown`` for this
        chunk — the hook the resilient runner's m-degradation policy
        tests against.
        """
        index = len(self.chunks) if chunk_index is None else chunk_index
        fault = fire_fault(
            "mrhs.block_breakdown", chunk=index, m=rhs.shape[1]
        )
        if fault is not None:
            raise BlockSolveBroken(
                f"injected block-solve breakdown in chunk {index} "
                f"(m={rhs.shape[1]})"
            )
        tol = self.mrhs.block_tol or self.params.tol
        precond = self.sd.make_preconditioner(R0)
        block = block_conjugate_gradient(
            R0,
            rhs,
            tol=tol,
            max_iter=self.params.max_iter,
            preconditioner=precond,
        )
        diag = block.diagnostics
        if diag is not None:
            logger.info("chunk block solve: %s", diag.summary())
        fallback: List[int] = []
        needs_repair = not block.converged or (
            diag is not None and (diag.breakdown or diag.stagnated)
        )
        if needs_repair:
            b_norms = np.linalg.norm(rhs, axis=0)
            stop = tol * np.where(b_norms > 0, b_norms, 1.0)
            true_rn = np.linalg.norm(rhs - R0 @ block.X, axis=0)
            for j in np.flatnonzero(true_rn > stop):
                res = conjugate_gradient(
                    R0,
                    rhs[:, j],
                    x0=block.X[:, j],
                    tol=tol,
                    max_iter=self.params.max_iter,
                    preconditioner=precond,
                )
                block.X[:, j] = res.x
                fallback.append(int(j))
            if fallback:
                logger.warning(
                    "block solve unreliable (%s); re-solved columns %s "
                    "with single-RHS CG",
                    "breakdown" if diag is not None and diag.breakdown
                    else "not converged",
                    fallback,
                )
        return block, fallback

    def solve_auxiliary(
        self, R0, Z: np.ndarray
    ) -> tuple[np.ndarray, BlockCGResult, np.ndarray]:
        """Steps 2-3 of Algorithm 2: Brownian block + augmented solve.

        Returns ``(F_B, block_result, U)`` where ``U[:, k]`` is the
        initial guess for in-chunk step ``k`` (column 0 being step 0's
        exact solution up to solver tolerance).
        """
        gen = self.sd.brownian_generator(R0)
        F_B = gen.generate(Z)
        rhs = -F_B + self.sd.external_forces()[:, None]
        result, _ = self._solve_block(R0, rhs)
        return F_B, result, result.X

    def begin_chunk(self, m: Optional[int] = None) -> _PendingChunk:
        """Steps 1-3 of Algorithm 2: assemble, Brownian block, block solve.

        Leaves the driver with a pending chunk; advance it one time
        step at a time with :meth:`step_in_chunk` (the resilient runner
        and checkpoint layer drive this directly) or all at once with
        :meth:`run_chunk`.
        """
        if self._pending is not None:
            raise RuntimeError("a chunk is already in progress")
        m = self.mrhs.m if m is None else int(m)
        if m < 1:
            raise ValueError("m must be >= 1")
        sw = Stopwatch()
        tr = self.telemetry.tracer
        # The chunk span stays open across the m in-chunk steps (they
        # nest under it) and is closed by _finish_chunk — or right here
        # when the block solve breaks, so no span leaks past the abort.
        self._chunk_span = tr.start("chunk", chunk=len(self.chunks), m=m)
        try:
            with sw.phase("Construct R0"), tr.span("Construct R0"):
                R0 = self.sd.build_matrix()
            Z = self.sd.draw_noise(m)
            if Z.ndim == 1:
                Z = Z[:, None]
            with sw.phase("Cheb vectors"), tr.span("Cheb vectors"):
                gen = self.sd.brownian_generator(R0)
                F_B = gen.generate(Z)
            with sw.phase("Calc guesses"), tr.span("Calc guesses"):
                # The deterministic force at the chunk-start configuration
                # seeds every column (f^P drifts as slowly as R does).
                rhs = -F_B + self.sd.external_forces()[:, None]
                block, fallback = self._solve_block(
                    R0, rhs, chunk_index=len(self.chunks)
                )
        except BaseException as exc:
            self._chunk_span.set(error=type(exc).__name__)
            self._chunk_span.end()
            self._chunk_span = NULL_SPAN
            raise
        self._pending = _PendingChunk(
            chunk_index=len(self.chunks),
            m=m,
            Z=Z,
            U=block.X,
            block_iterations=block.iterations,
            block_gspmv_calls=block.gspmv_calls,
            block_converged=block.converged,
            block_diagnostics=block.diagnostics,
            fallback_columns=fallback,
            chunk_timings=sw.record(),
        )
        if self.sd.health is not None:
            self.sd.health.observe_block(
                chunk_index=self._pending.chunk_index,
                step_index=self.sd.step_index,
                U=block.X,
                converged=block.converged,
            )
        if not np.isfinite(block.X).all():
            # A non-finite guess column can never recover inside CG, so
            # the chunk is born quarantined (its steps cold-start).
            self.quarantine_chunk(
                reason="block solve produced non-finite guesses"
            )
        return self._pending

    def quarantine_chunk(self, reason: str = "") -> None:
        """Discard the pending chunk's block solutions as poisoned.

        The chunk keeps running — same noise columns ``Z``, same
        boundaries — but every remaining step's first solve cold-starts
        instead of being seeded by ``U`` (the stale or corrupted block
        solution).  Recorded on the eventual :class:`ChunkRecord`.
        """
        p = self._pending
        if p is None:
            raise RuntimeError("no chunk in progress to quarantine")
        if not p.quarantined:
            p.quarantined = True
            p.quarantine_reason = reason
            self._chunk_span.set(quarantined=True)
            self.telemetry.metrics.counter("chunks.quarantined").inc()
            logger.warning(
                "chunk %d quarantined at step %d of %d: %s",
                p.chunk_index, p.k, p.m, reason or "unspecified",
            )

    @property
    def pending(self) -> Optional[_PendingChunk]:
        """The in-progress chunk, if any (``None`` at chunk boundaries)."""
        return self._pending

    def step_in_chunk(self) -> StepRecord:
        """Advance one time step of the pending chunk (steps 4-14).

        Finishing the last step freezes the chunk into a
        :class:`ChunkRecord` and clears the pending state.
        """
        p = self._pending
        if p is None:
            raise RuntimeError("no chunk in progress; call begin_chunk first")
        u_guess = None if p.quarantined else p.U[:, p.k].copy()
        step = self.sd.step(z=p.Z[:, p.k], u_guess=u_guess)
        self._log_step(p.chunk_index, p.k, step)
        p.steps.append(step)
        p.k += 1
        if p.k == p.m:
            self._finish_chunk()
        return step

    def _finish_chunk(self) -> ChunkRecord:
        p = self._pending
        self._chunk_span.end(
            block_iterations=p.block_iterations,
            block_converged=p.block_converged,
            quarantined=p.quarantined,
            degraded=bool(p.degradations),
        )
        self._chunk_span = NULL_SPAN
        mx = self.telemetry.metrics
        mx.counter("chunks.completed").inc()
        if p.degradations:
            mx.counter("chunks.degraded").inc()
        record = ChunkRecord(
            chunk_index=p.chunk_index,
            m=p.m,
            block_iterations=p.block_iterations,
            block_gspmv_calls=p.block_gspmv_calls,
            block_converged=p.block_converged,
            steps=list(p.steps),
            chunk_timings=p.chunk_timings,
            block_diagnostics=p.block_diagnostics,
            fallback_columns=list(p.fallback_columns),
            degradations=list(p.degradations),
            retries=p.retries,
            quarantined=p.quarantined,
            quarantine_reason=p.quarantine_reason,
        )
        self.chunks.append(record)
        self._pending = None
        return record

    def run_chunk(self, m: Optional[int] = None) -> ChunkRecord:
        """Advance one full Algorithm 2 chunk of ``m`` time steps.

        ``m`` defaults to the driver's :class:`MrhsParameters`; passing
        a value overrides it for this chunk only (the hook the adaptive
        scheduling driver uses).
        """
        self.begin_chunk(m)
        while self._pending is not None:
            self.step_in_chunk()
        return self.chunks[-1]

    @staticmethod
    def _log_step(chunk_index: int, k: int, step: StepRecord) -> None:
        """Per-time-step convergence telemetry (the robustness layer's
        observable for every future perf PR)."""
        logger.debug(
            "chunk %d step %d: 1st solve %d it, 2nd solve %d it, "
            "converged=%s, guess_error=%s",
            chunk_index,
            k,
            step.iterations_first,
            step.iterations_second,
            step.converged,
            "n/a" if step.guess_error is None else f"{step.guess_error:.3e}",
        )
        for label, diag in (
            ("1st", step.diagnostics_first),
            ("2nd", step.diagnostics_second),
        ):
            if diag is not None and (diag.breakdown or not diag.converged):
                logger.warning(
                    "chunk %d step %d: %s solve %s",
                    chunk_index, k, label, diag.summary(),
                )

    def run(self, n_chunks: int) -> List[ChunkRecord]:
        """Advance ``n_chunks * m`` time steps."""
        if n_chunks < 0:
            raise ValueError("n_chunks must be non-negative")
        return [self.run_chunk() for _ in range(n_chunks)]

    # ------------------------------------------------------------------
    def step_records(self) -> List[StepRecord]:
        """All per-step records across chunks, in time order."""
        return [s for c in self.chunks for s in c.steps]

    def average_step_time(self) -> float:
        """Amortized wall-clock seconds per time step so far."""
        if not self.chunks:
            return 0.0
        total = sum(c.total_time() for c in self.chunks)
        steps = sum(c.m for c in self.chunks)
        return total / steps

    # ------------------------------------------------------------------
    # checkpointable state
    # ------------------------------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        """Full serializable driver state, including mid-chunk position.

        A checkpoint taken between two in-chunk steps stores the block
        solve's noise ``Z`` and guess matrix ``U``, so resuming replays
        the remaining steps bit-for-bit without re-running the block
        solve (whose diagnostics, being telemetry, are dropped).
        """
        state: Dict[str, Any] = {
            "kind": "mrhs",
            "sd": self.sd.get_state(),
            "m": self.mrhs.m,
            "block_tol": self.mrhs.block_tol,
            "chunks": _chunks_to_state(self.chunks),
            "pending": None,
        }
        p = self._pending
        if p is not None:
            state["pending"] = {
                "chunk_index": p.chunk_index,
                "m": p.m,
                "k": p.k,
                "Z": p.Z.copy(),
                "U": p.U.copy(),
                "block_iterations": p.block_iterations,
                "block_gspmv_calls": p.block_gspmv_calls,
                "block_converged": p.block_converged,
                "fallback_columns": list(p.fallback_columns),
                "retries": p.retries,
                "degradations": list(p.degradations),
                "quarantined": p.quarantined,
                "quarantine_reason": p.quarantine_reason,
                "steps": records_to_state(p.steps),
                "timings_phases": dict(p.chunk_timings.phases),
                "timings_counts": dict(p.chunk_timings.counts),
            }
        return state

    def set_state(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`get_state` in place (bit-exact trajectory)."""
        if state.get("kind") != "mrhs":
            raise ValueError(
                f"not an MrhsStokesianDynamics state: {state.get('kind')!r}"
            )
        # Restoring over an in-progress chunk abandons its live span.
        self._chunk_span.end(abandoned=True)
        self._chunk_span = NULL_SPAN
        self.sd.set_state(state["sd"])
        block_tol = state.get("block_tol")
        self.mrhs = MrhsParameters(
            m=int(state["m"]),
            block_tol=None if block_tol is None else float(block_tol),
        )
        self.chunks = _chunks_from_state(state["chunks"])
        pend = state.get("pending")
        if pend is None:
            self._pending = None
        else:
            self._pending = _PendingChunk(
                chunk_index=int(pend["chunk_index"]),
                m=int(pend["m"]),
                Z=np.asarray(pend["Z"], dtype=np.float64),
                U=np.asarray(pend["U"], dtype=np.float64),
                block_iterations=int(pend["block_iterations"]),
                block_gspmv_calls=int(pend["block_gspmv_calls"]),
                block_converged=bool(pend["block_converged"]),
                block_diagnostics=None,
                fallback_columns=[int(j) for j in pend["fallback_columns"]],
                chunk_timings=TimingRecord(
                    phases=dict(pend["timings_phases"]),
                    counts={k: int(v) for k, v in pend["timings_counts"].items()},
                ),
                steps=records_from_state(pend["steps"]),
                k=int(pend["k"]),
                retries=int(pend["retries"]),
                degradations=[int(v) for v in pend["degradations"]],
                quarantined=bool(pend.get("quarantined", False)),
                quarantine_reason=str(pend.get("quarantine_reason", "")),
            )

    @classmethod
    def from_state(
        cls, state: Dict[str, Any], *, forces=None, telemetry: TelemetryHub = NULL_HUB
    ) -> "MrhsStokesianDynamics":
        """Reconstruct a driver from a checkpointed state."""
        sd = StokesianDynamics.from_state(
            state["sd"], forces=forces, telemetry=telemetry
        )
        driver = cls.__new__(cls)
        driver.sd = sd
        driver.mrhs = MrhsParameters(m=1)
        driver.chunks = []
        driver._pending = None
        # A restored mid-chunk pending has no live span; its remaining
        # steps appear as roots in the resumed run's trace segment.
        driver._chunk_span = NULL_SPAN
        driver.set_state(state)
        return driver


# ----------------------------------------------------------------------
# ChunkRecord summaries (checkpoint payloads)
# ----------------------------------------------------------------------
def _ragged_to_state(lists: List[List[int]]) -> Dict[str, np.ndarray]:
    return {
        "flat": np.array(
            [v for sub in lists for v in sub], dtype=np.int64
        ),
        "counts": np.array([len(sub) for sub in lists], dtype=np.int64),
    }


def _ragged_from_state(state: Dict[str, np.ndarray]) -> List[List[int]]:
    out: List[List[int]] = []
    offset = 0
    flat = state["flat"]
    for count in state["counts"]:
        out.append([int(v) for v in flat[offset : offset + int(count)]])
        offset += int(count)
    return out


def _chunks_to_state(chunks: List[ChunkRecord]) -> Dict[str, Any]:
    return {
        "chunk_index": np.array([c.chunk_index for c in chunks], dtype=np.int64),
        "m": np.array([c.m for c in chunks], dtype=np.int64),
        "block_iterations": np.array(
            [c.block_iterations for c in chunks], dtype=np.int64
        ),
        "block_gspmv_calls": np.array(
            [c.block_gspmv_calls for c in chunks], dtype=np.int64
        ),
        "block_converged": np.array(
            [c.block_converged for c in chunks], dtype=bool
        ),
        "retries": np.array([c.retries for c in chunks], dtype=np.int64),
        "quarantined": np.array([c.quarantined for c in chunks], dtype=bool),
        "quarantine_reason": [c.quarantine_reason for c in chunks],
        "steps_per_chunk": np.array([len(c.steps) for c in chunks], dtype=np.int64),
        "steps": records_to_state([s for c in chunks for s in c.steps]),
        "fallback": _ragged_to_state([c.fallback_columns for c in chunks]),
        "degradations": _ragged_to_state([c.degradations for c in chunks]),
    }


def _chunks_from_state(state: Dict[str, Any]) -> List[ChunkRecord]:
    steps = records_from_state(state["steps"])
    fallback = _ragged_from_state(state["fallback"])
    degradations = _ragged_from_state(state["degradations"])
    empty = TimingRecord(phases={}, counts={})
    out: List[ChunkRecord] = []
    offset = 0
    n_chunks = len(state["chunk_index"])
    quarantined = state.get("quarantined", np.zeros(n_chunks, dtype=bool))
    reasons = state.get("quarantine_reason", [""] * n_chunks)
    for i in range(n_chunks):
        n_steps = int(state["steps_per_chunk"][i])
        out.append(
            ChunkRecord(
                chunk_index=int(state["chunk_index"][i]),
                m=int(state["m"][i]),
                block_iterations=int(state["block_iterations"][i]),
                block_gspmv_calls=int(state["block_gspmv_calls"][i]),
                block_converged=bool(state["block_converged"][i]),
                steps=steps[offset : offset + n_steps],
                chunk_timings=empty,
                block_diagnostics=None,
                fallback_columns=fallback[i],
                degradations=degradations[i],
                retries=int(state["retries"][i]),
                quarantined=bool(quarantined[i]),
                quarantine_reason=str(reasons[i]),
            )
        )
        offset += n_steps
    return out
