"""Algorithm 2: Stokesian dynamics with Multiple Right-Hand Sides.

The key obstacle the paper overcomes: in a dynamical simulation the
right-hand sides arrive *sequentially* — step k+1's system cannot be
formed until step k is done — so a block solver seems inapplicable.
The trick (Section III): at two consecutive steps the systems

    R_k     u_k     = -f^B_k     = -S(R_k) z_k
    R_{k+1} u_{k+1} = -f^B_{k+1} = -S(R_{k+1}) z_{k+1}

have *different* right-hand sides but *nearly identical* matrices
(particles move slowly).  All the noise vectors z_k are available up
front, so one can solve the **augmented system**

    R_0 [u_0, u'_1, ..., u'_{m-1}] = -S(R_0) [z_0, z_1, ..., z_{m-1}]

with a block method.  Column 0 is the exact solution for step 0; the
other columns are the solutions the later steps *would* have if the
matrix did not change — excellent initial guesses, degrading only as
sqrt(step) like the Brownian displacement itself (Figure 5).

The block solve and the block Chebyshev application are cheap because
every iteration is one GSPMV with ``m`` vectors (~2x a single SPMV for
m = 8-16), while the saved CG iterations are full single-vector solves.

One chunk of ``m`` steps:

    1. Construct R_0
    2. F^B = S(R_0) Z                       (Cheb vectors,  GSPMV)
    3. Solve R_0 U = -F^B by block CG       (Calc guesses,  GSPMV)
    4-6.  advance step 0 using u_0
    7-14. for k = 1 .. m-1: advance step k, seeding the first solve
          with u'_k  (Cheb single / 1st solve / 2nd solve)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.solvers.block_cg import BlockCGResult, block_conjugate_gradient
from repro.solvers.cg import conjugate_gradient
from repro.solvers.diagnostics import SolveDiagnostics
from repro.stokesian.dynamics import SDParameters, StepRecord, StokesianDynamics
from repro.stokesian.particles import ParticleSystem
from repro.util.rng import RngLike
from repro.util.timer import Stopwatch, TimingRecord

__all__ = ["MrhsParameters", "ChunkRecord", "MrhsStokesianDynamics"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MrhsParameters:
    """MRHS-specific knobs on top of :class:`SDParameters`."""

    m: int = 16
    """Number of right-hand sides per chunk (the paper's experiments use
    16; the best value sits near the GSPMV bandwidth/compute crossover,
    see Table VIII)."""
    block_tol: Optional[float] = None
    """Relative tolerance of the auxiliary block solve (defaults to the
    in-step solver tolerance)."""

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if self.block_tol is not None and not 0 < self.block_tol < 1:
            raise ValueError("block_tol must be in (0, 1)")


@dataclass(frozen=True)
class ChunkRecord:
    """Everything that happened in one chunk of ``m`` steps."""

    chunk_index: int
    m: int
    block_iterations: int
    block_gspmv_calls: int
    block_converged: bool
    steps: List[StepRecord]
    chunk_timings: TimingRecord
    """Phases amortized over the chunk: "Construct R0", "Cheb vectors",
    "Calc guesses"."""
    block_diagnostics: Optional[SolveDiagnostics] = None
    """Convergence record of the auxiliary block solve (restarts,
    breakdowns, per-column residual history)."""
    fallback_columns: List[int] = field(default_factory=list)
    """Guess columns re-solved by single-RHS CG after the block solve
    reported breakdown or failed its true-residual check."""

    @property
    def guess_errors(self) -> List[Optional[float]]:
        """Per-step relative error of the block-solve initial guess
        (the Figure 5 observable)."""
        return [s.guess_error for s in self.steps]

    @property
    def first_solve_iterations(self) -> List[int]:
        """Per-step 1st-solve iterations (the Figure 6 observable)."""
        return [s.iterations_first for s in self.steps]

    def total_time(self) -> float:
        return self.chunk_timings.total() + sum(
            s.timings.total() for s in self.steps
        )

    def average_step_time(self) -> float:
        """The Tables VI/VII bottom row: chunk cost amortized per step."""
        return self.total_time() / self.m


class MrhsStokesianDynamics:
    """Algorithm 2 driver.

    Owns a :class:`StokesianDynamics` instance and reuses all of its
    components — same matrix assembly, same Brownian generator, same CG
    — changing only where the first solve's initial guess comes from.

    Parameters
    ----------
    system:
        Initial configuration.
    params:
        Shared SD parameters.
    mrhs:
        MRHS parameters (chunk size ``m``).
    rng:
        Noise stream (same semantics as the original driver, so the two
        algorithms can be run on identical noise).
    """

    def __init__(
        self,
        system: ParticleSystem,
        params: SDParameters = SDParameters(),
        mrhs: MrhsParameters = MrhsParameters(),
        *,
        rng: RngLike = None,
        forces=None,
    ) -> None:
        self.sd = StokesianDynamics(system, params, rng=rng, forces=forces)
        self.mrhs = mrhs
        self.chunks: List[ChunkRecord] = []

    # ------------------------------------------------------------------
    @property
    def system(self) -> ParticleSystem:
        return self.sd.system

    @property
    def params(self) -> SDParameters:
        return self.sd.params

    # ------------------------------------------------------------------
    def _solve_block(
        self, R0, rhs: np.ndarray
    ) -> tuple[BlockCGResult, List[int]]:
        """Run the augmented block solve with single-RHS CG fallback.

        When the block solve reports breakdown or fails to converge,
        every column whose true residual misses the tolerance is
        re-solved by plain CG (seeded with the block solve's partial
        solution).  Returns the (possibly repaired) result and the list
        of fallback column indices.
        """
        tol = self.mrhs.block_tol or self.params.tol
        precond = self.sd.make_preconditioner(R0)
        block = block_conjugate_gradient(
            R0,
            rhs,
            tol=tol,
            max_iter=self.params.max_iter,
            preconditioner=precond,
        )
        diag = block.diagnostics
        if diag is not None:
            logger.info("chunk block solve: %s", diag.summary())
        fallback: List[int] = []
        needs_repair = not block.converged or (
            diag is not None and (diag.breakdown or diag.stagnated)
        )
        if needs_repair:
            b_norms = np.linalg.norm(rhs, axis=0)
            stop = tol * np.where(b_norms > 0, b_norms, 1.0)
            true_rn = np.linalg.norm(rhs - R0 @ block.X, axis=0)
            for j in np.flatnonzero(true_rn > stop):
                res = conjugate_gradient(
                    R0,
                    rhs[:, j],
                    x0=block.X[:, j],
                    tol=tol,
                    max_iter=self.params.max_iter,
                    preconditioner=precond,
                )
                block.X[:, j] = res.x
                fallback.append(int(j))
            if fallback:
                logger.warning(
                    "block solve unreliable (%s); re-solved columns %s "
                    "with single-RHS CG",
                    "breakdown" if diag is not None and diag.breakdown
                    else "not converged",
                    fallback,
                )
        return block, fallback

    def solve_auxiliary(
        self, R0, Z: np.ndarray
    ) -> tuple[np.ndarray, BlockCGResult, np.ndarray]:
        """Steps 2-3 of Algorithm 2: Brownian block + augmented solve.

        Returns ``(F_B, block_result, U)`` where ``U[:, k]`` is the
        initial guess for in-chunk step ``k`` (column 0 being step 0's
        exact solution up to solver tolerance).
        """
        gen = self.sd.brownian_generator(R0)
        F_B = gen.generate(Z)
        rhs = -F_B + self.sd.external_forces()[:, None]
        result, _ = self._solve_block(R0, rhs)
        return F_B, result, result.X

    def run_chunk(self, m: Optional[int] = None) -> ChunkRecord:
        """Advance one full Algorithm 2 chunk of ``m`` time steps.

        ``m`` defaults to the driver's :class:`MrhsParameters`; passing
        a value overrides it for this chunk only (the hook the adaptive
        scheduling driver uses).
        """
        m = self.mrhs.m if m is None else int(m)
        if m < 1:
            raise ValueError("m must be >= 1")
        sw = Stopwatch()
        with sw.phase("Construct R0"):
            R0 = self.sd.build_matrix()
        Z = self.sd.draw_noise(m)
        if Z.ndim == 1:
            Z = Z[:, None]
        with sw.phase("Cheb vectors"):
            gen = self.sd.brownian_generator(R0)
            F_B = gen.generate(Z)
        with sw.phase("Calc guesses"):
            # The deterministic force at the chunk-start configuration
            # seeds every column (f^P drifts as slowly as R does).
            rhs = -F_B + self.sd.external_forces()[:, None]
            block, fallback = self._solve_block(R0, rhs)
        U = block.X

        steps = []
        for k in range(m):
            step = self.sd.step(z=Z[:, k], u_guess=U[:, k].copy())
            self._log_step(len(self.chunks), k, step)
            steps.append(step)
        record = ChunkRecord(
            chunk_index=len(self.chunks),
            m=m,
            block_iterations=block.iterations,
            block_gspmv_calls=block.gspmv_calls,
            block_converged=block.converged,
            steps=steps,
            chunk_timings=sw.record(),
            block_diagnostics=block.diagnostics,
            fallback_columns=fallback,
        )
        self.chunks.append(record)
        return record

    @staticmethod
    def _log_step(chunk_index: int, k: int, step: StepRecord) -> None:
        """Per-time-step convergence telemetry (the robustness layer's
        observable for every future perf PR)."""
        logger.debug(
            "chunk %d step %d: 1st solve %d it, 2nd solve %d it, "
            "converged=%s, guess_error=%s",
            chunk_index,
            k,
            step.iterations_first,
            step.iterations_second,
            step.converged,
            "n/a" if step.guess_error is None else f"{step.guess_error:.3e}",
        )
        for label, diag in (
            ("1st", step.diagnostics_first),
            ("2nd", step.diagnostics_second),
        ):
            if diag is not None and (diag.breakdown or not diag.converged):
                logger.warning(
                    "chunk %d step %d: %s solve %s",
                    chunk_index, k, label, diag.summary(),
                )

    def run(self, n_chunks: int) -> List[ChunkRecord]:
        """Advance ``n_chunks * m`` time steps."""
        if n_chunks < 0:
            raise ValueError("n_chunks must be non-negative")
        return [self.run_chunk() for _ in range(n_chunks)]

    # ------------------------------------------------------------------
    def step_records(self) -> List[StepRecord]:
        """All per-step records across chunks, in time order."""
        return [s for c in self.chunks for s in c.steps]

    def average_step_time(self) -> float:
        """Amortized wall-clock seconds per time step so far."""
        if not self.chunks:
            return 0.0
        total = sum(c.total_time() for c in self.chunks)
        steps = sum(c.m for c in self.chunks)
        return total / steps
