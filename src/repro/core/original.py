"""Side-by-side comparison of Algorithm 1 and Algorithm 2.

The paper's Tables V-VII compare the two algorithms on the same
physical system.  :func:`run_comparison` runs both drivers from the
same initial configuration with identically seeded noise streams and
returns their per-step records plus aggregate statistics — the raw
material for every "with guesses / without guesses" and
"MRHS / Original" column pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.mrhs import ChunkRecord, MrhsParameters, MrhsStokesianDynamics
from repro.stokesian.dynamics import SDParameters, StepRecord, StokesianDynamics
from repro.stokesian.particles import ParticleSystem
from repro.util.rng import RngLike

__all__ = ["ComparisonResult", "run_comparison"]


@dataclass(frozen=True)
class ComparisonResult:
    """Matched runs of the two algorithms."""

    mrhs_chunks: List[ChunkRecord]
    original_steps: List[StepRecord]

    @property
    def mrhs_steps(self) -> List[StepRecord]:
        return [s for c in self.mrhs_chunks for s in c.steps]

    # ------------------------------------------------------------------
    def mrhs_average_step_time(self) -> float:
        total = sum(c.total_time() for c in self.mrhs_chunks)
        n = sum(c.m for c in self.mrhs_chunks)
        return total / n if n else 0.0

    def original_average_step_time(self) -> float:
        times = [s.timings.total() for s in self.original_steps]
        return float(np.mean(times)) if times else 0.0

    def speedup(self) -> float:
        """Original / MRHS average step time (>1 means MRHS wins)."""
        m = self.mrhs_average_step_time()
        return self.original_average_step_time() / m if m > 0 else 0.0

    def iteration_comparison(self) -> Dict[str, float]:
        """Mean 1st-solve iterations with and without guesses
        (the Table V aggregate)."""
        with_g = [s.iterations_first for c in self.mrhs_chunks for s in c.steps[1:]]
        without = [s.iterations_first for s in self.original_steps]
        return {
            "with_guesses": float(np.mean(with_g)) if with_g else 0.0,
            "without_guesses": float(np.mean(without)) if without else 0.0,
        }


def run_comparison(
    system: ParticleSystem,
    params: SDParameters,
    *,
    n_steps: int,
    m: int,
    rng: RngLike = 0,
) -> ComparisonResult:
    """Run Algorithm 2 then Algorithm 1 from the same start.

    ``n_steps`` is rounded down to a whole number of chunks.  Both runs
    see identically seeded (hence identical) noise sequences, so the
    only difference is the algorithm.
    """
    if n_steps < m:
        raise ValueError("n_steps must cover at least one chunk")
    n_chunks = n_steps // m
    seed_like = rng if isinstance(rng, (int, type(None))) else None
    if seed_like is None and not isinstance(rng, (int, type(None))):
        raise TypeError("run_comparison needs a re-seedable rng (int seed)")

    mrhs = MrhsStokesianDynamics(
        system, params, MrhsParameters(m=m), rng=seed_like
    )
    mrhs.run(n_chunks)

    original = StokesianDynamics(system, params, rng=seed_like)
    original.run(n_chunks * m)
    return ComparisonResult(
        mrhs_chunks=mrhs.chunks, original_steps=original.history
    )
