#!/usr/bin/env python
"""Choosing the number of right-hand sides (Section V.B.3 in practice).

"An important question for the MRHS algorithm is how many right-hand
sides should be used" — the answer: near the GSPMV bandwidth->compute
crossover m_s.  This example shows all three of the library's policies
on a real system:

1. FixedM — the paper's m = 16;
2. ModelDrivenM — m_s from the roofline model of the actual matrix;
3. AdaptiveM — measurement-driven hill climbing, no model required;

and evaluates the modelled cost curve Tmrhs(m) with iteration counts
measured from the simulation itself.

Run:  python examples/choose_m.py
"""

import numpy as np

from repro import (
    MrhsParameters,
    MrhsStokesianDynamics,
    SDParameters,
    StokesianDynamics,
    random_configuration,
)
from repro.core.optimal_m import solver_counts_from_run
from repro.core.schedule import AdaptiveM, FixedM, ModelDrivenM
from repro.perfmodel.machine import WESTMERE
from repro.perfmodel.mrhs_model import MrhsCostModel
from repro.util.tables import format_table


def main() -> None:
    system = random_configuration(200, 0.5, rng=0)
    params = SDParameters()

    # Measure iteration counts from a short matched pair of runs.
    m_probe = 8
    mrhs = MrhsStokesianDynamics(system, params, MrhsParameters(m=m_probe), rng=1)
    mrhs.run(1)
    orig = StokesianDynamics(system, params, rng=1)
    orig.run(m_probe)
    counts = solver_counts_from_run(mrhs, orig.history)
    print(
        f"measured iteration counts: N={counts.n_noguess} (no guess), "
        f"N1={counts.n_first} (guessed), N2={counts.n_second} (2nd solve), "
        f"Cmax={counts.cheb_order}"
    )

    R = mrhs.sd.build_matrix()
    cost = MrhsCostModel(R, WESTMERE, counts)

    # The three policies.
    fixed = FixedM(16)
    model_driven = ModelDrivenM(machine=WESTMERE, offset=-1)
    adaptive = AdaptiveM(m=4, m_max=32)
    # Feed the adaptive policy the modelled per-chunk times (in a real
    # deployment these would be measured wall-clock times).
    for _ in range(6):
        adaptive.observe(cost.average_step_time(adaptive.choose()))

    print(
        format_table(
            ["policy", "chosen m"],
            [
                ["FixedM (paper's 16)", fixed.choose(R)],
                ["ModelDrivenM (m_s - 1)", model_driven.choose(R)],
                ["AdaptiveM (hill climb)", adaptive.choose(R)],
            ],
            title="m-selection policies",
        )
    )

    # The cost curve they are navigating.
    ms = cost.crossover_m()
    mopt = cost.optimal_m(48)
    rows = [
        [m, round(cost.average_step_time(m), 4), round(cost.speedup(m), 3)]
        for m in (1, 2, 4, 8, mopt, 16, 24, 32)
    ]
    print()
    print(
        format_table(
            ["m", "Tmrhs [modelled s/step]", "speedup vs original"],
            rows,
            title=f"Modelled cost curve on WSM: m_s={ms}, m_optimal={mopt}",
        )
    )
    print(
        "\nThe optimum sits just below the bandwidth->compute crossover,"
        "\nthe paper's Table VIII observation."
    )


if __name__ == "__main__":
    main()
