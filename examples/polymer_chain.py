#!/usr/bin/env python
"""A bonded chain macromolecule in crowded solvent, simulated with MRHS.

Section II allows "bonded forces for simulating long-chain molecules as
a bonded chain of particles" as the deterministic force f^P.  This
example embeds a 10-bead harmonic chain among free crowder proteins and
runs the MRHS algorithm with the bonded force field:

* the chain stays connected (bond lengths fluctuate around rest) while
  the whole system diffuses;
* the MRHS machinery is unchanged — f^P simply joins the right-hand
  sides, including the auxiliary block solve's columns.

Run:  python examples/polymer_chain.py
"""

import numpy as np

from repro import MrhsParameters, MrhsStokesianDynamics, SDParameters
from repro.stokesian.bonded import chain_bonds
from repro.util.tables import format_table

N_TOTAL = 60
CHAIN_BEADS = 10
N_CHUNKS = 4
M = 6


def build_system(rest: float):
    """A straight chain along x at the box center, crowders relaxed
    around it."""
    from repro.stokesian.packing import box_edge_for_fraction, relax_overlaps
    from repro.stokesian.particles import ParticleSystem

    radii = np.full(N_TOTAL, 20.0)
    edge = box_edge_for_fraction(radii, 0.25)
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, edge, size=(N_TOTAL, 3))
    center = edge / 2
    for b in range(CHAIN_BEADS):
        positions[b] = [
            (center - rest * CHAIN_BEADS / 2 + rest * b) % edge,
            center,
            center,
        ]
    # Relax with 3%-inflated radii so the final configuration has real
    # surface gaps (room to move under the overlap-safe integrator).
    inflated = ParticleSystem(positions, radii * 1.03, [edge] * 3)
    relaxed = relax_overlaps(inflated)
    return ParticleSystem(relaxed.positions, radii, [edge] * 3)


def main() -> None:
    rest = 1.15 * 2 * 20.0
    system = build_system(rest)
    bonds = chain_bonds(range(CHAIN_BEADS), rest_length=rest, stiffness=20.0)

    driver = MrhsStokesianDynamics(
        system,
        SDParameters(dt=0.1),
        MrhsParameters(m=M),
        rng=1,
        forces=bonds,
    )

    print(f"chain of {CHAIN_BEADS} beads + {N_TOTAL - CHAIN_BEADS} crowders")
    print(f"initial bond lengths: {np.round(bonds.bond_lengths(system), 1)}")
    rows = []
    for c in range(N_CHUNKS):
        chunk = driver.run_chunk()
        lengths = bonds.bond_lengths(driver.system)
        rows.append(
            [
                c,
                chunk.block_iterations,
                round(float(np.mean(chunk.first_solve_iterations[1:])), 1),
                round(float(lengths.mean()), 1),
                round(float(lengths.std()), 2),
                f"{bonds.energy(driver.system):.3g}",
            ]
        )
    print()
    print(
        format_table(
            ["chunk", "block iters", "mean 1st-solve iters",
             "mean bond len", "bond len std", "bond energy"],
            rows,
            title=f"MRHS chunks of {M} steps with bonded forces (rest={rest:.0f})",
        )
    )
    stretch = np.abs(bonds.bond_lengths(driver.system) - rest).max()
    print(
        f"\nmax deviation from rest length after {N_CHUNKS * M} steps: "
        f"{stretch:.1f} ({stretch / rest:.0%} of rest); bond energy is "
        "relaxing monotonically - overdamped crowded dynamics is slow by "
        "nature, which is why these simulations need so many (cheap) steps."
    )


if __name__ == "__main__":
    main()
