#!/usr/bin/env python
"""Macromolecular crowding study: the paper's motivating application.

The intro motivates SD with "the simulation of the motion of proteins
and other macromolecules in their cellular environment" — crowded
(up to ~40% occupied) cytoplasm where lubrication forces dominate and
Brownian dynamics fails.  This example:

1. builds E. coli-like suspensions at 10%, 30% and 50% occupancy;
2. shows how crowding produces near-contact pairs, a contact peak in
   g(r), ill-conditioned resistance matrices (the paper's Table V
   driver), and suppressed self-diffusion;
3. contrasts SD with the Brownian-dynamics baseline, which lets
   crowded particles interpenetrate (the reason SD exists).

Run:  python examples/ecoli_cytoplasm.py
"""

import numpy as np

from repro import SDParameters, StokesianDynamics, random_configuration
from repro.stokesian.analysis import (
    TrajectoryAnalyzer,
    contact_pairs,
    radial_distribution,
)
from repro.stokesian.brownian_dynamics import BDParameters, BrownianDynamics
from repro.stokesian.resistance import build_resistance_matrix
from repro.util.tables import format_table

N_PARTICLES = 80
N_STEPS = 6
DT = 0.05


def main() -> None:
    rows = []
    for phi in (0.1, 0.3, 0.5):
        system = random_configuration(N_PARTICLES, phi, rng=1)
        R = build_resistance_matrix(system)
        cond = np.linalg.cond(R.to_dense())
        sd = StokesianDynamics(system, SDParameters(dt=DT), rng=2)
        analyzer = TrajectoryAnalyzer(sd.system)
        for _ in range(N_STEPS):
            sd.step()
            analyzer.record(sd.system)
        iters = np.mean([r.iterations_first for r in sd.history])
        rows.append(
            [
                f"{phi:.0%}",
                contact_pairs(system),
                round(R.blocks_per_row, 1),
                f"{cond:.1e}",
                round(iters, 1),
                f"{analyzer.diffusion_estimate(N_STEPS * DT):.3g}",
            ]
        )
    print(
        format_table(
            ["occupancy", "contacts", "nnzb/nb", "cond(R)", "CG iters", "D"],
            rows,
            title=f"Crowding study ({N_PARTICLES} E. coli-distributed proteins); "
            f"dilute-limit D0 for the median radius ~ "
            f"{TrajectoryAnalyzer.stokes_einstein(27.77):.3g}",
        )
    )
    print(
        "\nCrowding multiplies near-contact pairs, densifies and"
        "\nill-conditions R (more CG iterations - exactly what the MRHS"
        "\nguesses attack), and suppresses diffusion below D0."
    )

    # Structure: the contact peak of g(r) at 50% occupancy.
    dense = random_configuration(150, 0.5, radii=np.full(150, 25.0), rng=5)
    r, g = radial_distribution(dense, n_bins=24)
    peak_r = r[np.argmax(g)]
    print(
        f"\ng(r) at 50% occupancy (equal 25-radius spheres): peak "
        f"g={g.max():.2f} at r={peak_r:.0f} (~contact diameter 50): the"
        "\nnear-touching pairs whose lubrication stiffens the matrix."
    )

    # SD vs BD at high occupancy: BD has no lubrication to stop overlap.
    system = random_configuration(N_PARTICLES, 0.4, rng=3)
    bd = BrownianDynamics(system, BDParameters(dt=DT), rng=4)
    bd.run(N_STEPS)
    sd = StokesianDynamics(system, SDParameters(dt=DT), rng=4)
    sd.run(N_STEPS)
    print(
        f"\nAfter {N_STEPS} steps at 40% occupancy:"
        f"\n  Brownian dynamics overlapping pairs: {bd.overlap_count()}"
        f"\n  Stokesian dynamics max overlap:      {sd.system.max_overlap():.3g}"
        "\nBD lets crowded particles interpenetrate; SD's lubrication +"
        "\noverlap-safe midpoint keeps the configuration physical."
    )


if __name__ == "__main__":
    main()
