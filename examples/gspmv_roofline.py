#!/usr/bin/env python
"""GSPMV performance study: how many vectors are "free"?

Reproduces the paper's Section IV analysis for any matrix/machine pair:

1. counts the exact memory traffic and flops of GSPMV at several m;
2. evaluates the roofline model on WSM and SNB (the paper's machines)
   to find the relative time r(m) and the bandwidth->compute crossover;
3. measures the host's actual wall-clock r(m) with the blocked kernel;
4. prints the "vectors within 2x" headline for each machine.

Run:  python examples/gspmv_roofline.py
"""

import time

import numpy as np

from repro.perfmodel.machine import SANDY_BRIDGE, WESTMERE, host_machine
from repro.perfmodel.roofline import GspmvTimeModel
from repro.sparse.gspmv import gspmv
from repro.sparse.traffic import memory_traffic_bytes
from repro.stokesian.packing import random_configuration
from repro.stokesian.resistance import build_resistance_matrix
from repro.util.tables import format_table

M_VALUES = [1, 2, 4, 8, 16, 32]


def main() -> None:
    # An SD resistance matrix with ~25 blocks per row (mat2-like).
    system = random_configuration(800, 0.4, rng=0)
    cutoff = 2.6 * float(np.mean(system.radii))
    A = build_resistance_matrix(system, cutoff_gap=cutoff)
    print(f"matrix: {A}")

    # 1-2. Model on the paper's machines.
    rows = []
    for machine in (WESTMERE, SANDY_BRIDGE):
        model = GspmvTimeModel(A, machine)
        rs = [model.relative_time(m) for m in M_VALUES]
        at2x = max(m for m, r in zip(M_VALUES, rs) if r <= 2.0)
        ms = model.crossover_m()
        rows.append(
            [machine.name]
            + [f"{r:.2f}" for r in rs]
            + [at2x, ms if ms else "-"]
        )
    print()
    print(
        format_table(
            ["machine", *[f"r({m})" for m in M_VALUES], "at 2x", "m_s"],
            rows,
            title="Modelled relative time (paper machines)",
        )
    )

    # Traffic accounting detail at m=8.
    counts = memory_traffic_bytes(A, 8, cache_bytes=WESTMERE.llc_bytes)
    print(
        f"\nGSPMV(m=8) moves {counts.total_bytes/1e6:.1f} MB "
        f"({counts.vector_bytes/1e6:.1f} vectors + "
        f"{counts.block_bytes/1e6:.1f} blocks + "
        f"{counts.index_bytes/1e6:.2f} index) for "
        f"{counts.flops/1e6:.1f} Mflops "
        f"(k(8) = {counts.k:.2f} extra X passes)"
    )

    # 3. Host wall-clock with the blocked (fused single-pass) kernel.
    times = {}
    for m in M_VALUES[:4]:
        X = np.random.default_rng(m).standard_normal((A.n_cols, m))
        gspmv(A, X, engine="blocked")
        best = np.inf
        for _ in range(3):
            t0 = time.perf_counter()
            gspmv(A, X, engine="blocked")
            best = min(best, time.perf_counter() - t0)
        times[m] = best
    host_r = {m: times[m] / times[1] for m in times}
    print("\nhost wall-clock (blocked kernel):")
    for m, r in host_r.items():
        print(f"  r({m}) = {r:.2f}")

    host = host_machine(quick=True)
    print(
        f"\nhost calibration: B = {host.stream_bw/1e9:.1f} GB/s, "
        f"F = {host.kernel_gflops:.1f} Gflop/s "
        f"(B/F = {host.byte_per_flop:.2f})"
    )


if __name__ == "__main__":
    main()
