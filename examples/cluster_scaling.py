#!/usr/bin/env python
"""Distributed GSPMV on the simulated cluster.

Reproduces the paper's Section IV.A2/IV.D3 workflow end to end:

1. partition an SD matrix across ranks with the paper's coordinate-
   based scheme;
2. execute the distributed GSPMV *numerically* on the simulated
   message-passing engine and verify it equals the single-node result;
3. evaluate the multi-node time model (paper cluster node + InfiniBand)
   for r(m, p) and the communication fractions of Table III.

Run:  python examples/cluster_scaling.py
"""

import numpy as np

from repro.distributed.comm import build_comm_plan
from repro.distributed.netmodel import INFINIBAND
from repro.distributed.partition import coordinate_partition
from repro.distributed.simcluster import DistributedGspmv, MultiNodeTimeModel
from repro.perfmodel.machine import CLUSTER_NODE
from repro.sparse.gspmv import gspmv
from repro.stokesian.packing import random_configuration
from repro.stokesian.resistance import build_resistance_matrix
from repro.util.tables import format_table


def main() -> None:
    system = random_configuration(600, 0.3, rng=0)
    A = build_resistance_matrix(system)
    print(f"matrix: {A}")

    # 1-2. Exact distributed execution on 8 simulated ranks.
    p = 8
    part = coordinate_partition(system, A, p)
    plan = build_comm_plan(A, part)
    dist = DistributedGspmv(A, part)
    X = np.random.default_rng(1).standard_normal((A.n_cols, 8))
    Y = dist.multiply(X)
    err = np.abs(Y - gspmv(A, X)).max()
    print(f"\np={p} distributed GSPMV max deviation from single node: {err:.1e}")
    print(
        f"exchange: {plan.total_messages()} messages, "
        f"{plan.total_volume_bytes(m=8)/1e3:.1f} kB on the wire "
        f"(metered: {dist.last_traffic.bytes_sent/1e3:.1f} kB)"
    )
    print(f"nnz load imbalance: {part.load_imbalance(A):.2f}")

    # 3. The time model across node counts.
    m_values = [1, 4, 8, 16, 32]
    node_counts = [1, 4, 16, 64]
    rows = []
    for nodes in node_counts:
        model = MultiNodeTimeModel(
            A,
            coordinate_partition(system, A, nodes),
            CLUSTER_NODE,
            INFINIBAND,
        )
        rows.append(
            [f"p={nodes}"]
            + [f"{model.relative_time(m):.2f}" for m in m_values]
            + [f"{model.communication_fraction(1):.0%}"]
        )
    print()
    print(
        format_table(
            ["nodes", *[f"r({m})" for m in m_values], "comm frac (m=1)"],
            rows,
            title="Multi-node relative time (cluster WSM + InfiniBand model)",
        )
    )
    print(
        "\nAt large node counts message latency dominates, so extra"
        "\nvectors are nearly free - GSPMV is *more* attractive on"
        "\nclusters, the paper's Figure 4 conclusion."
    )


if __name__ == "__main__":
    main()
