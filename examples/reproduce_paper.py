#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one command.

Thin wrapper over the benchmark harness: runs the full bench suite
(which asserts every experiment's shape properties and persists each
table/figure under ``benchmarks/out/``) and then prints the stitched
results file.

Run from the repository root:  python examples/reproduce_paper.py
(equivalent to ``pytest benchmarks/ --benchmark-only`` + reading
``benchmarks/out/ALL_RESULTS.md``; takes a couple of minutes.)
"""

import pathlib
import subprocess
import sys


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    if not (root / "benchmarks").is_dir():
        print("run from a checkout containing benchmarks/", file=sys.stderr)
        return 2
    code = subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/",
            "--benchmark-only",
            "--benchmark-disable-gc",
            "-q",
        ],
        cwd=root,
    )
    results = root / "benchmarks" / "out" / "ALL_RESULTS.md"
    if results.exists():
        print(results.read_text())
        print(f"(persisted at {results})")
    return code


if __name__ == "__main__":
    sys.exit(main())
