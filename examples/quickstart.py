#!/usr/bin/env python
"""Quickstart: run a Stokesian dynamics simulation with the MRHS algorithm.

Builds a small crowded suspension of E. coli-sized proteins, runs one
chunk of the Multiple Right-Hand Sides algorithm (Algorithm 2 of the
paper) and the original algorithm (Algorithm 1) on identical noise, and
prints the iteration counts that make MRHS faster.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    MrhsParameters,
    MrhsStokesianDynamics,
    SDParameters,
    StokesianDynamics,
    random_configuration,
)


def main() -> None:
    # 1. A periodic box of 150 polydisperse spheres at 40% occupancy
    #    (radii drawn from the paper's Table IV E. coli distribution).
    system = random_configuration(150, volume_fraction=0.4, rng=0)
    print(f"system: {system}")

    params = SDParameters(dt=0.05, cheb_degree=30, tol=1e-6)
    m = 8  # right-hand sides per chunk

    # 2. MRHS: one augmented block solve seeds the next m steps.
    mrhs = MrhsStokesianDynamics(system, params, MrhsParameters(m=m), rng=42)
    chunk = mrhs.run_chunk()
    print(f"\nMRHS chunk of {m} steps:")
    print(f"  block solve: {chunk.block_iterations} iterations "
          f"({chunk.block_gspmv_calls} GSPMVs with {m} vectors)")
    print(f"  1st-solve iterations per step: {chunk.first_solve_iterations}")
    errs = ["-" if e is None else f"{e:.1e}" for e in chunk.guess_errors]
    print(f"  guess errors per step:         {errs}")

    # 3. The original algorithm on the same noise, for comparison.
    orig = StokesianDynamics(system, params, rng=42)
    orig.run(m)
    orig_iters = [r.iterations_first for r in orig.history]
    print(f"\nOriginal algorithm, same noise:")
    print(f"  1st-solve iterations per step: {orig_iters}")

    saved = np.mean(orig_iters) - np.mean(chunk.first_solve_iterations)
    print(f"\nMRHS saves {saved:.0f} CG iterations per step on average;")
    print("each block-solve iteration costs only ~2x a single SPMV on")
    print("bandwidth-bound hardware, which is the paper's 10-30% speedup.")

    # 4. Physics still matches: both drivers end in the same place.
    drift = np.abs(mrhs.system.positions - orig.system.positions).max()
    print(f"\nmax trajectory deviation between algorithms: {drift:.2e} "
          "(solver-tolerance level)")


if __name__ == "__main__":
    main()
